package bench

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"pretzel/internal/metrics"
	"pretzel/internal/oven"
	"pretzel/internal/runtime"
	"pretzel/internal/store"
	"pretzel/internal/vector"
)

// overloadResult is one open-loop run at a fixed arrival rate.
type overloadResult struct {
	Offered   int           // requests the pacer issued
	Completed int           // requests served successfully
	Shed      int           // requests shed at admission (ErrOverloaded)
	Failed    int           // any other failure (must stay 0)
	Window    time.Duration // wall-clock measurement window
	Lat       *metrics.Histogram
	HPLat     *metrics.Histogram // high-priority probe latencies
	HPCount   int
	HPFailed  int // high-priority probes shed or failed (must stay 0)
}

// Goodput is successfully served requests per second.
func (r overloadResult) Goodput() float64 {
	return float64(r.Completed) / r.Window.Seconds()
}

// ShedRate is the fraction of offered requests shed at admission.
func (r overloadResult) ShedRate() float64 {
	if r.Offered == 0 {
		return 0
	}
	return float64(r.Shed) / float64(r.Offered)
}

// measureCapacity estimates the batch engine's closed-loop capacity
// (requests/s). The submitter pool is deep enough that the estimate
// approaches the service rate rather than 2/round-trip-latency — an
// open-loop sweep keyed to a latency-bound estimate would never
// actually overload the server.
func measureCapacity(rt *runtime.Runtime, names []string, input string, window time.Duration) float64 {
	const workers = 8
	var done int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	stop := time.Now().Add(window)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			in, out := vector.New(0), vector.New(0)
			n := int64(0)
			for i := 0; time.Now().Before(stop); i++ {
				in.SetText(input)
				tk, err := rt.SubmitRequest(runtime.Request{Model: names[(w+i)%len(names)], In: in, Out: out})
				if err != nil {
					continue
				}
				if tk.Wait() == nil {
					n++
				}
			}
			mu.Lock()
			done += n
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	return float64(done) / window.Seconds()
}

// openLoopRun offers best-effort traffic at a fixed arrival rate for
// one window — issuing requests on the pacer's schedule regardless of
// completions (open loop, the §5.3-style saturation methodology) — and
// concurrently probes with a trickle of high-priority requests. The
// admission plane decides per arrival: serve or shed with
// ErrOverloaded.
func openLoopRun(rt *runtime.Runtime, names []string, input string, rate float64, window time.Duration) overloadResult {
	res := overloadResult{Window: window, Lat: &metrics.Histogram{}, HPLat: &metrics.Histogram{}}
	var mu sync.Mutex
	var wg sync.WaitGroup

	// Best-effort pacer: every millisecond tick releases the arrivals
	// the rate owes (carrying the fractional remainder).
	start := time.Now()
	stop := start.Add(window)
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	var owed float64
	i, ticks := 0, 0
	for now := range tick.C {
		if now.After(stop) {
			break
		}
		ticks++
		owed += rate * time.Millisecond.Seconds()
		for ; owed >= 1; owed-- {
			i++
			res.Offered++
			in, out := vector.New(0), vector.New(0)
			in.SetText(input)
			t0 := time.Now()
			tk, err := rt.SubmitRequest(runtime.Request{Model: names[i%len(names)], In: in, Out: out})
			if err != nil {
				if errors.Is(err, runtime.ErrOverloaded) {
					res.Shed++
				} else {
					// Failed is shared with the completion goroutines,
					// which update it under mu.
					mu.Lock()
					res.Failed++
					mu.Unlock()
				}
				continue
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				err := tk.Wait()
				d := time.Since(t0)
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					res.Failed++
					return
				}
				res.Completed++
				res.Lat.Record(d)
			}()
		}
		// High-priority probe: one reserved-traffic request every 5ms.
		if ticks%5 == 0 {
			in, out := vector.New(0), vector.New(0)
			in.SetText(input)
			t0 := time.Now()
			tk, err := rt.SubmitRequest(runtime.Request{Model: names[0], In: in, Out: out, Priority: runtime.PriorityHigh})
			if err == nil {
				err = tk.Wait()
			}
			if err != nil {
				res.HPFailed++
			} else {
				res.HPLat.Record(time.Since(t0))
				res.HPCount++
			}
		}
	}
	wg.Wait()
	return res
}

// runOverload is the open-loop overload experiment: it measures the
// stack's closed-loop capacity, then sweeps the offered arrival rate
// across it (0.5× to 4×) and reports goodput, shed rate and latency
// percentiles per point — the paper-style latency/throughput story
// under saturation, now with admission control keeping p99 flat and
// converting excess load into explicit ErrOverloaded sheds instead of
// unbounded queueing.
func runOverload(w io.Writer, env *Env) error {
	sa, err := env.SA()
	if err != nil {
		return err
	}
	names := planNames(sa.Files)
	n := len(names)
	if n > 4 {
		n = 4
	}
	names, files := names[:n], sa.Files[:n]
	input := sa.Set.TestInputs[0]

	// The pacer releases arrivals in 1ms ticks, so the in-flight limit
	// must absorb one sub-capacity tick's burst (arrivals/ms at 1×)
	// without shedding; past capacity the bursts outrun the drain and
	// admission clips them — the behavior under test.
	const maxInFlight, reservedHP = 512, 64
	objStore := store.New()
	rt := runtime.New(objStore, runtime.Config{
		Executors:            2,
		MaxInFlight:          maxInFlight,
		ReservedHighPriority: reservedHP,
	})
	defer rt.Close()
	if _, err := loadPretzel(rt, objStore, files, oven.DefaultOptions()); err != nil {
		return err
	}
	if err := warmRuntime(rt, names, input, 2); err != nil {
		return err
	}

	capacity := measureCapacity(rt, names, input, env.LoadWindow)
	fmt.Fprintf(w, "%d models, admission MaxInFlight=%d (%d reserved high-priority)\n", n, maxInFlight, reservedHP)
	fmt.Fprintf(w, "closed-loop capacity: %.0f req/s\n", capacity)
	fmt.Fprintf(w, "%-8s %-9s %-9s %-9s %-7s %-10s %-10s %-10s\n",
		"load", "offered", "goodput", "shed/s", "shed%", "p50", "p99", "hp-p99")
	for _, mult := range []float64{0.5, 1, 2, 4} {
		rate := capacity * mult
		if rate < 100 {
			rate = 100
		}
		res := openLoopRun(rt, names, input, rate, env.LoadWindow)
		if res.Failed > 0 {
			return fmt.Errorf("overload: %d requests failed outside admission", res.Failed)
		}
		fmt.Fprintf(w, "%-8s %-9.0f %-9.0f %-9.0f %-7.1f %-10v %-10v %-10v\n",
			fmt.Sprintf("%.1fx", mult),
			float64(res.Offered)/res.Window.Seconds(),
			res.Goodput(),
			float64(res.Shed)/res.Window.Seconds(),
			res.ShedRate()*100,
			res.Lat.Percentile(50).Round(time.Microsecond),
			res.Lat.Percentile(99).Round(time.Microsecond),
			res.HPLat.Percentile(99).Round(time.Microsecond))
	}
	ad := rt.AdmissionStats()
	fmt.Fprintf(w, "admission: in_flight=%d shed=%d (limit %d, %d reserved)\n",
		ad.InFlight, ad.Shed, ad.MaxInFlight, ad.ReservedHighPriority)
	hot := rt.ModelLoads()[names[0]]
	fmt.Fprintf(w, "model %s: served=%d shed=%d p50=%v p99=%v\n",
		names[0], hot.Latency.Count, hot.Shed,
		hot.Latency.P50().Round(time.Microsecond), hot.Latency.P99().Round(time.Microsecond))
	st := rt.SchedStats()
	fmt.Fprintf(w, "scheduler: submitted=%d completed=%d queue_high=%d queue_low=%d\n",
		st.Submitted, st.Completed, st.QueueHigh, st.QueueLow)
	fmt.Fprintf(w, "(best-effort arrivals past the in-flight limit are shed at admission with\n")
	fmt.Fprintf(w, " ErrOverloaded; reserved high-priority probes keep their latency throughout)\n")
	return nil
}
