package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"pretzel/internal/workload"
)

// sharedEnv is built once: workload generation dominates test time.
var sharedEnv = func() *Env {
	e := QuickEnv()
	e.LoadPoints = []int{100}
	e.LoadWindow = 150 * time.Millisecond
	e.HotIters = 5
	return e
}()

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 24 {
		t.Fatalf("expected 24 experiments, have %d", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	for _, id := range []string{"table1", "fig3", "fig4", "fig5", "coldsplit", "fig8",
		"fig9", "ablation", "fig10", "fig11", "fig12", "fig13", "scale", "reservation",
		"fig14", "deadline", "batchsweep", "parscale", "overload", "density"} {
		if _, ok := Get(id); !ok {
			t.Fatalf("missing experiment %s", id)
		}
	}
	if _, ok := Get("nope"); ok {
		t.Fatal("unknown id must not resolve")
	}
}

func TestRunUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := Run(&buf, sharedEnv, "zzz"); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

// TestAllExperimentsQuick executes every driver at quick scale; this is
// the harness's own integration test.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment sweep skipped in -short")
	}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			if e.ID == "churn" && raceEnabled {
				// The churn drill hard-asserts a wall-clock p99 ratio
				// (backoff-dominated hash-only vs service-dominated
				// warm-aware); race instrumentation inflates the warm
				// path until the ratio floor is noise. The placement
				// plane itself stays race-covered by the
				// internal/cluster churn and flapping tests.
				t.Skip("wall-clock latency ratio is meaningless under the race detector")
			}
			var buf bytes.Buffer
			if err := Run(&buf, sharedEnv, e.ID); err != nil {
				t.Fatalf("%s: %v\noutput so far:\n%s", e.ID, err, buf.String())
			}
			out := buf.String()
			if !strings.Contains(out, e.ID) || len(out) < 80 {
				t.Fatalf("%s: suspiciously small output:\n%s", e.ID, out)
			}
		})
	}
}

func TestEnvAssetsCached(t *testing.T) {
	e := QuickEnv()
	e.Scale = workload.SmallScale()
	a, err := e.SA()
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.SA()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("SA assets must be cached")
	}
	c, err := e.AC()
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Files) != e.Scale.ACCount {
		t.Fatalf("ac files=%d", len(c.Files))
	}
	// Every exported file must re-import.
	p, err := importFile(a.Files[0])
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != a.Set.Pipelines[0].Name {
		t.Fatal("name mismatch after import")
	}
}

func TestPlanNames(t *testing.T) {
	got := planNames([]string{"/tmp/x/sa-001.zip", "ac-000.zip"})
	if got[0] != "sa-001" || got[1] != "ac-000" {
		t.Fatalf("planNames: %v", got)
	}
}

func TestSortedCopy(t *testing.T) {
	in := []float64{3, 1, 2}
	out := sortedCopy(in)
	if out[0] != 1 || out[2] != 3 || in[0] != 3 {
		t.Fatal("sortedCopy must sort a copy")
	}
}
