package bench

import (
	"bytes"
	"regexp"
	"strings"
	"testing"
)

const sampleBenchOutput = `
goos: linux
goarch: amd64
pkg: pretzel
BenchmarkBatchStage/batch=64/batched-4         	     200	      3456 ns/op	18437120 rec/s	       0 B/op	       0 allocs/op
BenchmarkBatchStage/batch=64/batched-4         	     200	      4000 ns/op	16000000 rec/s	       0 B/op	       0 allocs/op
BenchmarkBatchStage/batch=64/per-record-4      	     200	     12000 ns/op	 5100000 rec/s
BenchmarkScalePoolSharded-1                    	   10000	      5000 ns/op	     160 B/op	       3 allocs/op
BenchmarkScalePoolSharded-1                    	   10000	      4000 ns/op	     160 B/op	       3 allocs/op
BenchmarkIrrelevant-4                          	     100	       100 ns/op
PASS
ok  	pretzel	2.345s
`

func TestParseBenchOutput(t *testing.T) {
	res, err := ParseBenchOutput(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	// -count=2: the best run wins; the -N proc suffix is stripped.
	batched := res["BenchmarkBatchStage/batch=64/batched"]
	if batched.Throughput != 18437120 || batched.Unit != "rec/s" || batched.NsPerOp != 3456 {
		t.Fatalf("batched %+v", batched)
	}
	// No rate metric: throughput derives from ns/op (best = 4000ns).
	pool := res["BenchmarkScalePoolSharded"]
	if pool.Unit != "op/s" || pool.NsPerOp != 4000 || pool.Throughput != 1e9/4000 {
		t.Fatalf("pool %+v", pool)
	}
	if _, ok := res["BenchmarkIrrelevant"]; !ok {
		t.Fatal("all benchmarks are parsed (gating filters later)")
	}
}

func TestParseBenchOutputEmpty(t *testing.T) {
	if _, err := ParseBenchOutput(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Fatal("no results must error")
	}
}

func TestCompareBenchmarks(t *testing.T) {
	gate := regexp.MustCompile(`^BenchmarkBatchStage/|^BenchmarkScalePool`)
	baseline := map[string]BenchResult{
		"BenchmarkBatchStage/batch=64/batched": {Throughput: 1000, Unit: "rec/s"},
		"BenchmarkScalePoolSharded":            {Throughput: 500, Unit: "op/s"},
		"BenchmarkScalePoolGlobal":             {Throughput: 400, Unit: "op/s"},
		"BenchmarkIrrelevant":                  {Throughput: 1},
	}
	current := map[string]BenchResult{
		"BenchmarkBatchStage/batch=64/batched": {Throughput: 900, Unit: "rec/s"}, // -10%: fine
		"BenchmarkScalePoolSharded":            {Throughput: 300, Unit: "op/s"},  // -40%: regression
		// BenchmarkScalePoolGlobal missing from the run entirely.
	}
	findings := CompareBenchmarks(baseline, current, gate, 0.25)
	if len(findings) != 3 {
		t.Fatalf("findings %+v", findings)
	}
	byName := map[string]GateFinding{}
	for _, f := range findings {
		byName[f.Name] = f
	}
	if f := byName["BenchmarkBatchStage/batch=64/batched"]; f.Failed || f.Delta > -0.09 || f.Delta < -0.11 {
		t.Fatalf("within-threshold drop flagged: %+v", f)
	}
	if f := byName["BenchmarkScalePoolSharded"]; !f.Failed || f.Missing {
		t.Fatalf("regression not flagged: %+v", f)
	}
	if f := byName["BenchmarkScalePoolGlobal"]; !f.Failed || !f.Missing {
		t.Fatalf("missing gated benchmark not flagged: %+v", f)
	}
	if _, ok := byName["BenchmarkIrrelevant"]; ok {
		t.Fatal("non-gated benchmark must not be compared")
	}
	// Improvements never fail.
	better := CompareBenchmarks(baseline,
		map[string]BenchResult{
			"BenchmarkBatchStage/batch=64/batched": {Throughput: 2000},
			"BenchmarkScalePoolSharded":            {Throughput: 501},
			"BenchmarkScalePoolGlobal":             {Throughput: 400},
		}, gate, 0.25)
	for _, f := range better {
		if f.Failed {
			t.Fatalf("improvement flagged: %+v", f)
		}
	}
}

func TestBenchArtifactRoundTrip(t *testing.T) {
	res, err := ParseBenchOutput(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBenchArtifact(&buf, "test run", res); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBenchArtifact(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(res) || back["BenchmarkScalePoolSharded"] != res["BenchmarkScalePoolSharded"] {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, res)
	}
	if _, err := ReadBenchArtifact(strings.NewReader("{}")); err == nil {
		t.Fatal("empty artifact must error")
	}
}
