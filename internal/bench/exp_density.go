package bench

import (
	"fmt"
	"io"
	"time"

	"pretzel/internal/metrics"
	"pretzel/internal/oven"
	"pretzel/internal/runtime"
	"pretzel/internal/store"
	"pretzel/internal/vector"
	"pretzel/internal/workload"
)

// densityVariants sizes the experiment: the paper's target density is
// "many thousands" of variants on one node (§1, §6 runs 300 concurrent
// models per machine; the Object Store is built for far more).
func densityVariants(env *Env) int {
	if env.Quick {
		return 400
	}
	return 10000
}

// runDensity registers N final-layer-only model variants on one node
// with sharing fully enabled — parameter interning in the Object Store
// AND whole-stage interning in the plan store (materialization mode, so
// the featurization front is one shared stage) — and reports what each
// additional variant actually costs against its no-sharing footprint.
func runDensity(w io.Writer, env *Env) error {
	n := densityVariants(env)
	ds, err := workload.BuildDensity(n, env.Scale)
	if err != nil {
		return err
	}
	objStore := store.New()
	rt := runtime.New(objStore, runtime.Config{Executors: 1})
	defer rt.Close()
	opts := oven.Options{AOT: true, Materialization: true, Plans: rt.PlanStore()}

	heapBase := metrics.HeapInUse()
	t0 := time.Now()
	firstBytes := 0
	for i, p := range ds.Pipelines {
		pl, err := oven.Compile(p, objStore, opts)
		if err != nil {
			return fmt.Errorf("bench: compiling %s: %w", p.Name, err)
		}
		if _, err := rt.Register(pl); err != nil {
			return err
		}
		if i == 0 {
			firstBytes = rt.MemBytes()
		}
	}
	loadTime := time.Since(t0)

	total := rt.MemBytes()
	marginal := 0
	if n > 1 {
		marginal = (total - firstBytes) / (n - 1)
	}
	tail := ds.Models[0].MemBytes()
	noShare := firstBytes * n

	// Spot-check correctness through the shared stages: sampled variants
	// against the workload's reference scorer.
	in, out := vector.New(0), vector.New(0)
	var worst float64
	step := n/25 + 1
	for i := 0; i < n; i += step {
		for _, s := range ds.TestInputs[:3] {
			in.SetText(s)
			if err := rt.Predict(fmt.Sprintf("dv-%05d", i), in, out); err != nil {
				return err
			}
			d := float64(out.Dense[0] - ds.Reference(i, s))
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
	}

	os := objStore.Stats()
	ps := rt.PlanStoreStats()
	fmt.Fprintf(w, "variants=%d (one featurization front, unique final layers)\n", n)
	fmt.Fprintf(w, "load: %v total, %.0f models/s\n",
		loadTime.Round(time.Millisecond), float64(n)/loadTime.Seconds())
	fmt.Fprintf(w, "accounted memory: total=%s first-variant=%s marginal/variant=%s (final layer alone=%s)\n",
		mb(uint64(total)), mb(uint64(firstBytes)), mb(uint64(marginal)), mb(uint64(tail)))
	fmt.Fprintf(w, "no-sharing estimate: %s  -> density gain %.1fx, live heap delta %s\n",
		mb(uint64(noShare)), float64(noShare)/float64(total), mb(heapDelta(heapBase)))
	fmt.Fprintf(w, "object store: unique=%d refs=%d bytes=%s saved=%s hits=%d misses=%d\n",
		os.Unique, os.Refs, mb(uint64(os.Bytes)), mb(uint64(os.BytesSaved)), os.Hits, os.Misses)
	fmt.Fprintf(w, "plan store: unique=%d refs=%d hits=%d misses=%d saved=%s\n",
		ps.Unique, ps.Refs, ps.Hits, ps.Misses, mb(uint64(ps.BytesSaved)))
	fmt.Fprintf(w, "prediction spot-check: max |plan - reference| = %.2g over %d variants x 3 inputs\n",
		worst, (n+step-1)/step)
	return nil
}
