package bench

import (
	"fmt"
	"io"
	goruntime "runtime"
	"time"

	"pretzel/internal/oven"
	"pretzel/internal/runtime"
	"pretzel/internal/store"
	"pretzel/internal/vector"
)

// runParscale measures data-parallel batch execution: one submitter
// pushes 256-record batch jobs through the batch engine while the
// executor count (and GOMAXPROCS) scales. Above one core each stage
// event splits into row-range subtasks that ride the work-stealing
// queues (plan.Fanout), so batched record throughput should scale with
// cores even though there is only ONE job in flight at a time — the
// scaling the per-job pipeline parallelism of fig12 cannot provide.
//
// Hard assertions (CI): with >= 2 cores the fan path must actually
// engage (parallel_stages > 0), and with >= 4 cores the cores=4
// configuration must reach >= 2.5x the cores=1 record throughput.
func runParscale(w io.Writer, env *Env) error {
	sa, err := env.SA()
	if err != nil {
		return err
	}
	files := sa.Files[:1]
	name := planNames(files)[0]
	const batch = 256
	iters := 200
	if env.Quick {
		iters = 40
	}

	cores := []int{1, 2, 4}
	if max := goruntime.NumCPU(); max >= 8 {
		cores = append(cores, 8)
	}

	fmt.Fprintf(w, "data-parallel batch execution: %d-record batch jobs, one submitter, grain=32:\n", batch)
	var base float64
	speedup := make(map[int]float64)
	for _, c := range cores {
		recs, stages, err := parscalePoint(files, name, sa.Set.TestInputs, c, batch, iters)
		if err != nil {
			return err
		}
		if base == 0 {
			base = recs
		}
		speedup[c] = recs / base
		fmt.Fprintf(w, "  cores=%-3d rec/s=%-12.0f speedup=%5.2fx parallel-stages=%d\n",
			c, recs, recs/base, stages)
		if c >= 2 && goruntime.NumCPU() >= 2 && stages == 0 {
			return fmt.Errorf("parscale: fan path never engaged at cores=%d (parallel_stages=0)", c)
		}
	}
	if goruntime.NumCPU() >= 4 {
		if s := speedup[4]; s < 2.5 {
			return fmt.Errorf("parscale: cores=4 speedup %.2fx < 2.5x over cores=1", s)
		}
	} else {
		fmt.Fprintf(w, "  (scaling assertion skipped: %d CPUs < 4)\n", goruntime.NumCPU())
	}
	return nil
}

// parscalePoint runs one (cores, batch) configuration: a fresh runtime
// with `cores` executors, a single-goroutine PredictBatch loop, and
// returns record throughput plus how many stage events fanned.
func parscalePoint(files []string, name string, inputs []string, cores, batch, iters int) (recs float64, parallelStages uint64, err error) {
	prev := goruntime.GOMAXPROCS(cores)
	defer goruntime.GOMAXPROCS(prev)

	objStore := store.New()
	rt := runtime.New(objStore, runtime.Config{Executors: cores, BatchGrain: 32})
	defer rt.Close()
	if _, err := loadPretzel(rt, objStore, files, oven.DefaultOptions()); err != nil {
		return 0, 0, err
	}
	ins := make([]*vector.Vector, batch)
	outs := make([]*vector.Vector, batch)
	for r := range ins {
		ins[r] = vector.New(0)
		ins[r].SetText(fmt.Sprintf("%s %d", inputs[r%len(inputs)], r))
		outs[r] = vector.New(0)
	}
	// Let the executor goroutines start and park: the fan path engages
	// only when spare (parked) executors exist to claim subtasks.
	time.Sleep(20 * time.Millisecond)
	for i := 0; i < 3; i++ {
		if err := rt.PredictBatch(name, ins, outs); err != nil {
			return 0, 0, err
		}
	}
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		if err := rt.PredictBatch(name, ins, outs); err != nil {
			return 0, 0, err
		}
	}
	el := time.Since(t0).Seconds()
	return float64(iters*batch) / el, rt.SchedStats().ParallelStages, nil
}
