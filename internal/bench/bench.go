// Package bench is the experiment harness: one driver per table and
// figure of the paper's evaluation (§5), regenerating the same rows and
// series. See DESIGN.md §3 for the experiment index and EXPERIMENTS.md
// for recorded paper-vs-measured results.
package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"pretzel/internal/metrics"
	"pretzel/internal/ops"
	"pretzel/internal/oven"
	"pretzel/internal/pipeline"
	"pretzel/internal/runtime"
	"pretzel/internal/store"
	"pretzel/internal/workload"
)

// Env carries the shared experiment configuration and lazily built
// workload assets.
type Env struct {
	Scale      workload.Scale
	Cores      []int // core sweep for fig12
	LoadPoints []int // offered load sweep (requests/s) for fig13/fig14
	HotIters   int   // hot-latency sample count per model
	LoadWindow time.Duration
	Quick      bool
	ModelDir   string

	mu sync.Mutex
	sa *SAAssets
	ac *ACAssets
}

// SAAssets bundles the SA workload with its exported model files.
type SAAssets struct {
	Set   *workload.SASet
	Files []string
}

// ACAssets bundles the AC workload with its exported model files.
type ACAssets struct {
	Set   *workload.ACSet
	Files []string
}

// QuickEnv is the reduced configuration used by tests and -quick runs.
func QuickEnv() *Env {
	return &Env{
		Scale:      workload.SmallScale(),
		Cores:      []int{1, 2},
		LoadPoints: []int{50, 200},
		HotIters:   20,
		LoadWindow: 300 * time.Millisecond,
		Quick:      true,
	}
}

// FullEnv is the evaluation configuration (250+250 pipelines).
func FullEnv() *Env {
	return &Env{
		Scale:      workload.BenchScale(),
		Cores:      []int{1, 2, 4, 8, 13},
		LoadPoints: []int{100, 200, 300, 400, 500},
		HotIters:   100,
		LoadWindow: 2 * time.Second,
	}
}

// modelDir lazily creates the export directory.
func (e *Env) modelDir() (string, error) {
	if e.ModelDir != "" {
		return e.ModelDir, nil
	}
	dir, err := os.MkdirTemp("", "pretzel-models-")
	if err != nil {
		return "", err
	}
	e.ModelDir = dir
	return dir, nil
}

// SA builds (once) the SA workload and its exported model files.
func (e *Env) SA() (*SAAssets, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.sa != nil {
		return e.sa, nil
	}
	set, err := workload.BuildSA(e.Scale)
	if err != nil {
		return nil, err
	}
	files, err := exportAll(e, set.Pipelines)
	if err != nil {
		return nil, err
	}
	e.sa = &SAAssets{Set: set, Files: files}
	return e.sa, nil
}

// AC builds (once) the AC workload and its exported model files.
func (e *Env) AC() (*ACAssets, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.ac != nil {
		return e.ac, nil
	}
	set, err := workload.BuildAC(e.Scale)
	if err != nil {
		return nil, err
	}
	files, err := exportAll(e, set.Pipelines)
	if err != nil {
		return nil, err
	}
	e.ac = &ACAssets{Set: set, Files: files}
	return e.ac, nil
}

// exportAll writes each pipeline to its own model file (the ML.Net-style
// model repository every configuration loads from).
func exportAll(e *Env, ps []*pipeline.Pipeline) ([]string, error) {
	dir, err := e.modelDir()
	if err != nil {
		return nil, err
	}
	files := make([]string, len(ps))
	for i, p := range ps {
		path := filepath.Join(dir, p.Name+".zip")
		if _, err := os.Stat(path); err == nil {
			files[i] = path
			continue
		}
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		if err := p.Export(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("bench: exporting %s: %w", p.Name, err)
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		files[i] = path
	}
	return files, nil
}

// importFile loads a pipeline from its model file (fresh parameter
// objects, as a black-box serving system would see them).
func importFile(path string) (*pipeline.Pipeline, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return pipeline.ImportBytes(b)
}

// cacheResolver shares operator instances across imports by the checksum
// of their serialized bytes (§4.1.3): the 2nd..Nth pipeline carrying an
// already-seen dictionary skips its deserialization entirely.
func cacheResolver(cache *store.OpCache) pipeline.OpResolver {
	return func(kind string, raw []byte) (ops.Op, error) {
		return cache.GetOrBuild(kind, store.HashRaw(raw), func() (ops.Op, error) {
			return pipeline.DefaultResolver(kind, raw)
		})
	}
}

// loadPretzel imports, compiles and registers a set of model files into
// a runtime, returning the wall-clock load time. With an Object Store the
// loader also shares operator instances at the serialized-bytes level.
func loadPretzel(rt *runtime.Runtime, objStore *store.ObjectStore, files []string, opts oven.Options) (time.Duration, error) {
	resolve := pipeline.DefaultResolver
	if objStore != nil {
		resolve = cacheResolver(store.NewOpCache())
	}
	t0 := time.Now()
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			return 0, err
		}
		p, err := pipeline.ImportBytesWith(b, resolve)
		if err != nil {
			return 0, err
		}
		pl, err := oven.Compile(p, objStore, opts)
		if err != nil {
			return 0, fmt.Errorf("bench: compiling %s: %w", p.Name, err)
		}
		if _, err := rt.Register(pl); err != nil {
			return 0, err
		}
	}
	return time.Since(t0), nil
}

// Experiment is one table/figure driver.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer, env *Env) error
}

// Experiments returns all drivers in presentation order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "Table 1: pipeline characteristics", runTable1},
		{"fig3", "Figure 3: operator sharing across 250 SA pipelines", runFig3},
		{"fig4", "Figure 4: cold vs hot latency CDF (black-box baseline)", runFig4},
		{"fig5", "Figure 5: per-operator latency breakdown (SA)", runFig5},
		{"coldsplit", "§2: cold prediction time split (init / JIT / compute)", runColdSplit},
		{"fig8", "Figure 8: cumulative memory usage + load times", runFig8},
		{"fig9", "Figure 9: latency CDFs, PRETZEL vs ML.Net (hot/cold)", runFig9},
		{"ablation", "§5.2.1: AOT and vector-pooling ablations", runAblation},
		{"fig10", "Figure 10: sub-plan materialization speedup (SA)", runFig10},
		{"fig11", "Figure 11: end-to-end HTTP latency vs containers", runFig11},
		{"fig12", "Figure 12: throughput scaling with cores", runFig12},
		{"fig13", "Figure 13: heavy load (micro): throughput + latency", runFig13},
		{"scale", "§4.2.1: multi-core Predict scaling, global vs sharded pool", runScale},
		{"reservation", "§5.4.1: reservation-based scheduling under load", runReservation},
		{"fig14", "Figure 14: heavy load end-to-end vs containers", runFig14},
		{"deadline", "deadline-aware scheduling: expired jobs shed before dispatch", runDeadline},
		{"batchsweep", "batch-aware kernels: records/s vs batch size, batched vs per-record", runBatchSweep},
		{"parscale", "data-parallel batch execution: one batch job's rec/s + fan-out speedup vs cores", runParscale},
		{"overload", "admission-controlled overload: open-loop goodput, shed rate, p99 across capacity", runOverload},
		{"cluster", "sharded cluster tier: aggregate goodput + p99 vs node count at fixed per-node capacity", runClusterExp},
		{"chaos", "fault containment: panic quarantine + hedged routing under injected faults", runChaosExp},
		{"longtail", "model storage tier: goodput + cold-start latency vs RAM-budget fraction under Zipf traffic", runLongtail},
		{"churn", "placement plane: tail latency + success through node kill/join, warm-aware vs hash-only", runChurnExp},
		{"density", "model density: N final-layer variants on one node, marginal bytes/variant with object + plan store sharing", runDensity},
	}
}

// Get returns the driver with the given id.
func Get(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Run executes one experiment by id.
func Run(w io.Writer, env *Env, id string) error {
	e, ok := Get(id)
	if !ok {
		return fmt.Errorf("bench: unknown experiment %q (have %v)", id, ids())
	}
	fmt.Fprintf(w, "=== %s — %s ===\n", e.ID, e.Title)
	t0 := time.Now()
	if err := e.Run(w, env); err != nil {
		return fmt.Errorf("bench: %s: %w", id, err)
	}
	fmt.Fprintf(w, "--- %s done in %v ---\n\n", e.ID, time.Since(t0).Round(time.Millisecond))
	return nil
}

func ids() []string {
	var out []string
	for _, e := range Experiments() {
		out = append(out, e.ID)
	}
	return out
}

// --- small formatting helpers ---

// mb renders bytes as MiB.
func mb(n uint64) string { return fmt.Sprintf("%.1fMB", float64(n)/(1<<20)) }

// printCDF renders an n-point CDF on one line.
func printCDF(w io.Writer, label string, rec *metrics.Recorder, points int) {
	pts := rec.CDF(points)
	fmt.Fprintf(w, "%-28s", label)
	for _, p := range pts {
		fmt.Fprintf(w, " %3.0f%%:%-9v", p.Frac*100, p.Value.Round(time.Microsecond))
	}
	fmt.Fprintln(w)
}

// summarize prints count/p50/p99/worst for a recorder.
func summarize(w io.Writer, label string, rec *metrics.Recorder) {
	fmt.Fprintf(w, "%-28s n=%-5d p50=%-10v p99=%-10v worst=%v\n",
		label, rec.Count(),
		rec.Percentile(50).Round(time.Microsecond),
		rec.Percentile(99).Round(time.Microsecond),
		rec.Max().Round(time.Microsecond))
}

// sortedCopy returns a sorted copy of durations in float64 milliseconds.
func sortedCopy(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	sort.Float64s(out)
	return out
}
