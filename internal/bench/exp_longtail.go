package bench

// Long-tail serving under a RAM budget (the model storage tier).
// PRETZEL's premise is thousands of registered models of which only a
// hot subset is in use at any moment; this experiment registers a long
// tail of variants on disk, serves Zipf-distributed traffic through
// the lifecycle manager at a sweep of RAM budgets, and reports the
// price of not being resident: goodput, cold-load and eviction
// counts, residency against the budget, and the cold-start latency
// histogram next to the hot-path percentiles. Success rate must stay
// 100% at every budget — cold requests are slower, never failed — and
// residency must stay under the budget.

import (
	"context"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"pretzel/internal/lifecycle"
	"pretzel/internal/metrics"
	"pretzel/internal/ml"
	"pretzel/internal/ops"
	"pretzel/internal/pipeline"
	"pretzel/internal/repo"
	"pretzel/internal/runtime"
	"pretzel/internal/schema"
	"pretzel/internal/serving"
	"pretzel/internal/store"
	"pretzel/internal/text"
	"pretzel/internal/workload"
)

// longtailModel builds one tiny SA variant whose dictionaries are
// salted with the model name: a tail of unrelated models, so each has
// a real marginal footprint and eviction actually frees memory.
func longtailModel(name string) (*pipeline.Pipeline, error) {
	cb, wb := text.NewDictBuilder(), text.NewDictBuilder()
	for _, doc := range []string{"nice product great wonderful " + name, "bad refund awful broken own" + name} {
		toks := text.Tokenize(doc, nil)
		for _, tok := range toks {
			text.ObserveCharNgrams(cb, []byte(tok), 2, 3)
		}
		text.ObserveWordNgrams(wb, toks, 2, nil)
	}
	cd, wd := cb.Build(0), wb.Build(0)
	weights := make([]float32, cd.Size()+wd.Size())
	if ix := wd.Lookup("nice"); ix >= 0 {
		weights[cd.Size()+int(ix)] = 3
	}
	return &pipeline.Pipeline{
		Name:        name,
		InputSchema: schema.Text("Text"),
		Stats:       pipeline.Stats{MaxVectorSize: cd.Size() + wd.Size(), SparseOutput: true},
		Nodes: []pipeline.Node{
			{Op: &ops.Tokenizer{}, Inputs: []int{pipeline.InputID}},
			{Op: &ops.CharNgram{MinN: 2, MaxN: 3, Dict: cd}, Inputs: []int{0}},
			{Op: &ops.WordNgram{MaxN: 2, Dict: wd}, Inputs: []int{0}},
			{Op: &ops.Concat{Dims: []int{cd.Size(), wd.Size()}}, Inputs: []int{1, 2}},
			{Op: &ops.LinearPredictor{Model: &ml.LinearModel{Kind: ml.LogisticRegression, Weights: weights}}, Inputs: []int{3}},
		},
	}, nil
}

// newLongtailManager builds a lifecycle manager over a fresh runtime
// and the given repository.
func newLongtailManager(dir string, budget int64, executors int) (*lifecycle.Manager, error) {
	rt := runtime.New(store.New(), runtime.Config{Executors: executors})
	r, err := repo.Open(dir)
	if err != nil {
		rt.Close()
		return nil, err
	}
	m, err := lifecycle.New(serving.NewLocal(rt, nil), r, lifecycle.Config{
		RAMBudget: budget,
		LazyLoad:  budget > 0, // budgeted runs start cold; unlimited preloads
	})
	if err != nil {
		rt.Close()
		return nil, err
	}
	return m, nil
}

// runLongtail sweeps RAM budget fractions over a long tail of models
// under Zipf traffic.
func runLongtail(w io.Writer, env *Env) error {
	nModels, workers, window := 1000, 8, env.LoadWindow
	if env.Quick {
		nModels, workers = 60, 4
	}

	dir, err := os.MkdirTemp("", "pretzel-longtail-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	rp, err := repo.Open(dir)
	if err != nil {
		return err
	}
	names := make([]string, nModels)
	t0 := time.Now()
	for i := range names {
		names[i] = fmt.Sprintf("lt-%04d", i)
		p, err := longtailModel(names[i])
		if err != nil {
			return err
		}
		zip, err := p.ExportBytes()
		if err != nil {
			return err
		}
		if _, err := rp.Put(names[i], 0, zip); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "published %d models to disk in %v\n", nModels, time.Since(t0).Round(time.Millisecond))

	// Calibrate: full residency footprint with no budget.
	cal, err := newLongtailManager(dir, 0, env.Cores[len(env.Cores)-1])
	if err != nil {
		return err
	}
	total := cal.ResidentBytes()
	cal.Close()
	fmt.Fprintf(w, "full residency = %s across %d models\n\n", mb(uint64(total)), nModels)

	fmt.Fprintf(w, "%-8s %-10s %-8s %-6s %-7s %-7s %-10s %-26s %s\n",
		"budget", "goodput", "ok", "fail", "cold", "evict", "resident", "cold-start p50/p95/p99", "e2e p50/p99")
	for _, frac := range []float64{0.10, 0.25, 0.50, 1.0} {
		budget := int64(float64(total) * frac)
		m, err := newLongtailManager(dir, budget, env.Cores[len(env.Cores)-1])
		if err != nil {
			return err
		}
		var okC, failC atomic.Uint64
		var overBudget atomic.Int64
		lat := &metrics.Histogram{}
		stop := time.Now().Add(window)
		var wg sync.WaitGroup
		for g := 0; g < workers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				z := workload.NewZipfPicker(nModels, 1.3, int64(g+1))
				for time.Now().Before(stop) {
					name := names[z.Pick()]
					r0 := time.Now()
					_, err := m.Predict(context.Background(), name, "a nice product", serving.PredictOptions{})
					if err != nil {
						failC.Add(1)
						continue
					}
					lat.Record(time.Since(r0))
					okC.Add(1)
					if got := m.ResidentBytes(); got > budget {
						overBudget.Store(got)
					}
				}
			}(g)
		}
		wg.Wait()

		ls := m.LStats()
		snap := lat.Snapshot()
		okRate := 100.0
		if n := okC.Load() + failC.Load(); n > 0 {
			okRate = 100 * float64(okC.Load()) / float64(n)
		}
		fmt.Fprintf(w, "%-8s %-10s %-8s %-6d %-7d %-7d %-10s %-26s %v/%v\n",
			fmt.Sprintf("%.0f%%", frac*100),
			fmt.Sprintf("%.0f/s", float64(okC.Load())/window.Seconds()),
			fmt.Sprintf("%.1f%%", okRate),
			failC.Load(), ls.ColdLoads, ls.Evictions,
			fmt.Sprintf("%.0f%%", 100*float64(ls.ResidentBytes)/float64(max64(budget, 1))),
			fmt.Sprintf("%v/%v/%v",
				time.Duration(ls.ColdStart.P50Nanos).Round(time.Microsecond),
				time.Duration(ls.ColdStart.P95Nanos).Round(time.Microsecond),
				time.Duration(ls.ColdStart.P99Nanos).Round(time.Microsecond)),
			time.Duration(snap.P50Nanos).Round(time.Microsecond),
			time.Duration(snap.P99Nanos).Round(time.Microsecond))

		m.Close()
		// The tier's two invariants, enforced, not just printed.
		if failC.Load() > 0 {
			return fmt.Errorf("longtail: %d requests failed at budget %.0f%% (success must stay 100%%)", failC.Load(), frac*100)
		}
		if v := overBudget.Load(); v > 0 {
			return fmt.Errorf("longtail: resident bytes %d exceeded budget %d at %.0f%%", v, budget, frac*100)
		}
	}
	fmt.Fprintln(w, "\ncold requests pay the disk→RAM load; none fail. Residency stays under every budget.")
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
