package bench

import (
	"bytes"
	"fmt"
	"runtime/debug"
	"testing"

	"pretzel/internal/oven"
	"pretzel/internal/runtime"
	"pretzel/internal/store"
	"pretzel/internal/vector"
	"pretzel/internal/workload"
)

// TestDensityTenThousandVariants is the PR's acceptance test: 10,000
// final-layer-only variants registered on one node must cost roughly
// one full model plus 10,000 final layers — NOT 10,000 full models —
// while every variant keeps its own correct predictions and the warm
// predict path stays allocation-free. Unregistering everything must
// return the object store and the plan store exactly to empty.
func TestDensityTenThousandVariants(t *testing.T) {
	n := 10000
	if testing.Short() {
		n = 400
	}
	ds, err := workload.BuildDensity(n, workload.SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	objStore := store.New()
	rt := runtime.New(objStore, runtime.Config{Executors: 1})
	defer rt.Close()
	plans := rt.PlanStore()
	opts := oven.Options{AOT: true, Materialization: true, Plans: plans}

	stagesPerPlan := 0
	firstBytes := 0
	for i, p := range ds.Pipelines {
		pl, err := oven.Compile(p, objStore, opts)
		if err != nil {
			t.Fatalf("compiling %s: %v", p.Name, err)
		}
		if _, err := rt.Register(pl); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			stagesPerPlan = len(pl.Stages)
			firstBytes = rt.MemBytes()
		}
	}

	// The memory bound: one full variant plus n final layers, with 50%
	// slack for skeletons and per-stage overhead. Without sharing the
	// total would be ~n × firstBytes — orders of magnitude over this.
	tail := ds.Models[0].MemBytes()
	limit := (firstBytes + n*tail) * 3 / 2
	if total := rt.MemBytes(); total > limit {
		t.Fatalf("accounted bytes %d exceed 1.5x bound %d (first=%d tail=%d n=%d)",
			total, limit, firstBytes, tail, n)
	}

	// Plan-store shape: the featurization front (every stage except the
	// model-bearing score stage) is interned ONCE and referenced by all
	// n plans; each variant adds exactly its own score stage.
	ps := plans.Stats()
	wantUnique := (stagesPerPlan - 1) + n
	if ps.Unique != wantUnique {
		t.Fatalf("plan store holds %d unique stages, want %d (%d shared + %d per-variant)",
			ps.Unique, wantUnique, stagesPerPlan-1, n)
	}
	if want := uint64(n * stagesPerPlan); ps.Refs != want {
		t.Fatalf("plan store refs = %d, want %d", ps.Refs, want)
	}

	// The object store carries the two dictionaries once and one linear
	// model per variant.
	if os := objStore.Stats(); os.Unique != 2+n {
		t.Fatalf("object store holds %d unique params, want %d (2 dicts + %d models)",
			os.Unique, 2+n, n)
	}

	// Every variant must predict ITS OWN final layer's score through the
	// shared featurization stage.
	in, out := vector.New(0), vector.New(0)
	input := ds.TestInputs[0]
	for i := 0; i < n; i++ {
		in.SetText(input)
		name := fmt.Sprintf("dv-%05d", i)
		if err := rt.Predict(name, in, out); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := ds.Reference(i, input)
		if d := out.Dense[0] - want; d > 1e-4 || d < -1e-4 {
			t.Fatalf("%s predicted %v, reference %v", name, out.Dense[0], want)
		}
	}

	// Warm predictions through shared stages stay allocation-free.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	if allocs := testing.AllocsPerRun(100, func() {
		in.SetText(input)
		if err := rt.Predict("dv-00000", in, out); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("warm Predict allocates %v/run with shared stages", allocs)
	}

	// Tear everything down: both stores must return exactly to empty.
	for i := 0; i < n; i++ {
		if err := rt.UnregisterRelease(fmt.Sprintf("dv-%05d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if c, b := objStore.Count(), objStore.MemBytes(); c != 0 || b != 0 {
		t.Fatalf("object store not drained: count=%d bytes=%d", c, b)
	}
	if c, b := plans.Count(), plans.MemBytes(); c != 0 || b != 0 {
		t.Fatalf("plan store not drained: count=%d bytes=%d", c, b)
	}
	if mem := rt.MemBytes(); mem != 0 {
		t.Fatalf("runtime still charges %d bytes with no models", mem)
	}
}

// TestDensityExperimentQuick smoke-runs the density driver at quick
// scale (it is part of TestAllExperimentsQuick too, but this keeps a
// focused failure signal).
func TestDensityExperimentQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("density driver skipped in -short")
	}
	var buf bytes.Buffer
	if err := Run(&buf, sharedEnv, "density"); err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	t.Logf("\n%s", buf.String())
}

// BenchmarkDensityRegister measures the marginal cost of registering
// one more final-layer variant on a node already dense with them:
// compile (signature + interning hits) + catalog install + release.
func BenchmarkDensityRegister(b *testing.B) {
	ds, err := workload.BuildDensity(64, workload.SmallScale())
	if err != nil {
		b.Fatal(err)
	}
	objStore := store.New()
	rt := runtime.New(objStore, runtime.Config{Executors: 1})
	defer rt.Close()
	opts := oven.Options{AOT: true, Materialization: true, Plans: rt.PlanStore()}
	for _, p := range ds.Pipelines {
		pl, err := oven.Compile(p, objStore, opts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := rt.Register(pl); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := ds.Pipelines[i%len(ds.Pipelines)]
		pl, err := oven.Compile(p, objStore, opts)
		if err != nil {
			b.Fatal(err)
		}
		name := fmt.Sprintf("bench-%d", i)
		if _, err := rt.RegisterVersion(pl, name, 1); err != nil {
			b.Fatal(err)
		}
		if err := rt.UnregisterRelease(name); err != nil {
			b.Fatal(err)
		}
	}
}
