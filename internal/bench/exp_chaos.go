package bench

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"pretzel/internal/chaos"
	"pretzel/internal/cluster"
	"pretzel/internal/runtime"
	"pretzel/internal/serving"
	"pretzel/internal/store"
)

// runChaosExp is the fault-containment experiment: the serving stack
// under deterministic injected faults, in two phases.
//
// Phase 1 (panic containment): a local engine hosts two models; a
// chaos rule makes every kernel execution of one model panic. The
// containment plane must convert the first PanicThreshold panics to
// typed ErrKernelPanic, quarantine the model after that (503-class
// ErrModelQuarantined), and keep the sibling model at 100% success
// with zero process crashes — the ISSUE's acceptance scenario.
//
// Phase 2 (hedged routing under faults): a 3-node K=2 cluster serves a
// closed loop twice over the same nodes — first fault-free to fix the
// baseline, then with one node degraded by +100ms injected latency and
// a 30% injected-error rate. Hedged requests (backup to the other
// replica after a short delay) plus budgeted retries must hold router
// p99 within 2x the fault-free p99 at zero failed predictions.
func runChaosExp(w io.Writer, env *Env) error {
	if err := chaosPanicPhase(w); err != nil {
		return err
	}
	return chaosHedgePhase(w, env)
}

// chaosPanicPhase runs the panic-isolation acceptance scenario.
func chaosPanicPhase(w io.Writer) error {
	const threshold = 3
	rt := runtime.New(store.New(), runtime.Config{
		Executors:      2,
		PanicThreshold: threshold,
		PanicWindow:    time.Minute,
		Quarantine:     time.Minute,
	})
	inj := chaos.New(serving.NewLocal(rt, nil), 42)
	defer inj.Close()
	for _, name := range []string{"good", "bad"} {
		p, err := clusterPipe(name)
		if err != nil {
			return err
		}
		zip, err := p.ExportBytes()
		if err != nil {
			return err
		}
		if _, err := inj.Register(zip, serving.RegisterOptions{Name: name}); err != nil {
			return err
		}
	}
	if _, err := inj.Arm(chaos.Rule{Model: "bad", Effect: chaos.EffectPanic}); err != nil {
		return err
	}

	const iters = 12
	var panics, quarantined, other, siblingOK int
	ctx := context.Background()
	for i := 0; i < iters; i++ {
		_, err := inj.Predict(ctx, "bad", "a nice product", serving.PredictOptions{})
		switch {
		case errors.Is(err, runtime.ErrKernelPanic):
			panics++
		case errors.Is(err, runtime.ErrModelQuarantined):
			quarantined++
		default:
			other++
		}
		if _, err := inj.Predict(ctx, "good", "a nice product", serving.PredictOptions{}); err == nil {
			siblingOK++
		}
	}
	st := inj.Stats()
	fmt.Fprintf(w, "panic containment: %d requests to a model whose every kernel execution panics (threshold %d)\n", iters, threshold)
	fmt.Fprintf(w, "  ErrKernelPanic %d, ErrModelQuarantined %d, other %d; sibling model %d/%d ok\n",
		panics, quarantined, other, siblingOK, iters)
	if st.Faults != nil {
		fmt.Fprintf(w, "  runtime fault counters: panics=%d quarantines=%d quarantined=%v\n",
			st.Faults.Panics, st.Faults.Quarantines, st.Faults.Quarantined)
	}
	if panics != threshold || quarantined != iters-threshold || other != 0 || siblingOK != iters {
		return fmt.Errorf("chaos: panic containment violated: panics=%d (want %d) quarantined=%d (want %d) other=%d sibling=%d/%d",
			panics, threshold, quarantined, iters-threshold, other, siblingOK, iters)
	}
	fmt.Fprintf(w, "  SLO PASS: panics typed and capped at threshold, model quarantined, sibling unaffected, process alive\n\n")
	return nil
}

// chaosHedgePhase measures hedged routing against a degraded node.
func chaosHedgePhase(w io.Writer, env *Env) error {
	const (
		nodes     = 3
		k         = 2
		minModels = 6
		workers   = 1
		service   = 2 * time.Millisecond
		hedge     = 4 * time.Millisecond
		faultMS   = 100
		errorRate = 0.3
	)
	c, engines, err := startClusterWith(nodes, k, minModels, service, cluster.Config{HedgeDelay: hedge},
		func(node int, eng serving.Engine) serving.Engine {
			return chaos.New(eng, int64(1000+node))
		})
	if err != nil {
		return err
	}
	defer c.close()

	fmt.Fprintf(w, "hedged routing: %d-node K=%d cluster, %d models, hedge delay %v, window %v\n",
		nodes, k, len(c.models), hedge, env.LoadWindow)
	base := runClusterLoad(c, workers, env.LoadWindow)

	inj := engines[0].(*chaos.Injector)
	if _, err := inj.Arm(chaos.Rule{Effect: chaos.EffectLatency, LatencyMS: faultMS, Op: "predict"}); err != nil {
		return err
	}
	if _, err := inj.Arm(chaos.Rule{Effect: chaos.EffectError, Error: "overloaded", Probability: errorRate, Op: "predict"}); err != nil {
		return err
	}
	faulted := runClusterLoad(c, workers, env.LoadWindow)
	injected := inj.Injected()
	inj.Reset()

	fmt.Fprintf(w, "%-22s %-9s %-8s %-10s %-10s\n", "phase", "goodput", "failed", "p50", "p99")
	for _, row := range []struct {
		name string
		res  clusterResult
	}{
		{"fault-free", base},
		{fmt.Sprintf("node0 +%dms/%.0f%%err", faultMS, errorRate*100), faulted},
	} {
		fmt.Fprintf(w, "%-22s %-9.0f %-8d %-10v %-10v\n",
			row.name, row.res.Goodput(), row.res.Failed,
			row.res.Lat.Percentile(50).Round(time.Microsecond),
			row.res.Lat.Percentile(99).Round(time.Microsecond))
	}
	cs := c.router.Stats().Cluster
	fmt.Fprintf(w, "router: %d faults injected at node0; retries=%d hedges=%d hedge-wins=%d failovers=%d\n",
		injected, cs.Retries, cs.Hedges, cs.HedgeWins, cs.Failovers)

	baseP99 := base.Lat.Percentile(99)
	faultP99 := faulted.Lat.Percentile(99)
	ratio := float64(faultP99) / float64(baseP99)
	ok := faulted.Failed == 0 && ratio <= 2.0
	verdict := "PASS"
	if !ok {
		verdict = "FAIL"
	}
	fmt.Fprintf(w, "SLO %s: faulted p99 %v = %.2fx fault-free p99 %v (budget 2.00x), failed %d (budget 0)\n",
		verdict, faultP99.Round(time.Microsecond), ratio, baseP99.Round(time.Microsecond), faulted.Failed)
	if !ok && !env.Quick {
		return fmt.Errorf("chaos: hedging SLO violated: p99 ratio %.2fx (budget 2.00x), failed %d", ratio, faulted.Failed)
	}
	return nil
}
