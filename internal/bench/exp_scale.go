package bench

import (
	"fmt"
	"io"
	goruntime "runtime"
	"sync"
	"sync/atomic"
	"time"

	"pretzel/internal/oven"
	"pretzel/internal/runtime"
	"pretzel/internal/store"
	"pretzel/internal/vector"
)

// runScale measures request-response throughput as cores scale, for the
// seed's contention profile (a single-shard, global-mutex vector pool)
// against the sharded pool (§4.2.1: the prediction path never
// serializes on cross-core synchronization). The shape mirrors Fig. 13:
// one curve per memory-management configuration, throughput on the y
// axis, parallelism on the x axis.
func runScale(w io.Writer, env *Env) error {
	sa, err := env.SA()
	if err != nil {
		return err
	}
	names := planNames(sa.Files)
	n := len(names)
	if n > 16 {
		n = 16
	}
	names, files := names[:n], sa.Files[:n]
	input := sa.Set.TestInputs[0]
	perCore := 20000
	if env.Quick {
		perCore = 2000
	}

	cores := env.Cores
	if max := goruntime.GOMAXPROCS(0); len(cores) == 0 || cores[len(cores)-1] < max {
		cores = append(append([]int(nil), cores...), max)
	}

	fmt.Fprintf(w, "request-response throughput (predictions/s), %d models, %d requests/core:\n", n, perCore)
	var oneSharded float64
	for _, c := range cores {
		global, err := predictThroughput(files, names, input, c, perCore*c, 1)
		if err != nil {
			return err
		}
		sharded, err := predictThroughput(files, names, input, c, perCore*c, 0)
		if err != nil {
			return err
		}
		if oneSharded == 0 {
			oneSharded = sharded / float64(c)
		}
		fmt.Fprintf(w, "  cores=%-3d global-pool=%-10.0f sharded-pool=%-10.0f ideal=%-10.0f speedup=%.2fx\n",
			c, global, sharded, oneSharded*float64(c), sharded/global)
	}
	return nil
}

// predictThroughput builds a fresh runtime with the given pool shard
// count (1 = the seed's global-mutex profile, 0 = one shard per core),
// then hammers Predict from `cores` goroutines and returns predictions/s.
func predictThroughput(files, names []string, input string, cores, total, poolShards int) (float64, error) {
	prev := goruntime.GOMAXPROCS(cores)
	defer goruntime.GOMAXPROCS(prev)

	objStore := store.New()
	rt := runtime.New(objStore, runtime.Config{Executors: 1, PoolShards: poolShards})
	defer rt.Close()
	if _, err := loadPretzel(rt, objStore, files, oven.DefaultOptions()); err != nil {
		return 0, err
	}
	if err := warmRuntime(rt, names, input, 2); err != nil {
		return 0, err
	}

	var next atomic.Int64
	var errMu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	t0 := time.Now()
	for g := 0; g < cores; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			in, out := vector.New(0), vector.New(0)
			for {
				i := next.Add(1) - 1
				if i >= int64(total) {
					return
				}
				in.SetText(input)
				if err := rt.Predict(names[i%int64(len(names))], in, out); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(t0)
	if firstErr != nil {
		return 0, firstErr
	}
	return float64(total) / elapsed.Seconds(), nil
}
