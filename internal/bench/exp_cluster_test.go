package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestClusterGoodputScales is the cluster-tier acceptance bar: at
// fixed per-node service capacity, a 3-node sharded cluster (K=1) must
// deliver >= 1.8x the aggregate goodput of a single node under the
// same closed-loop load. Node capacity is pinned by the paced engine
// (a sleep, not CPU), so the ratio holds on small CI machines too.
func TestClusterGoodputScales(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster load test in -short mode")
	}
	const (
		service         = 2 * time.Millisecond
		workersPerModel = 2
		minModels       = 12
		window          = 400 * time.Millisecond
	)
	goodput := func(n int) float64 {
		c, err := startCluster(n, 1, minModels, service)
		if err != nil {
			t.Fatal(err)
		}
		defer c.close()
		res := runClusterLoad(c, workersPerModel, window)
		if res.Failed != 0 {
			t.Fatalf("%d-node run: %d requests failed", n, res.Failed)
		}
		if res.Completed == 0 {
			t.Fatalf("%d-node run served nothing", n)
		}
		return res.Goodput()
	}
	g1 := goodput(1)
	g3 := goodput(3)
	ratio := g3 / g1
	t.Logf("goodput: 1 node %.0f req/s, 3 nodes %.0f req/s (%.2fx)", g1, g3, ratio)
	if ratio < 1.8 {
		t.Fatalf("3-node aggregate goodput only %.2fx of 1-node (want >= 1.8x)", ratio)
	}
}

// TestClusterExperimentRuns smoke-runs the bench driver end to end.
func TestClusterExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster experiment in -short mode")
	}
	env := QuickEnv()
	env.LoadWindow = 150 * time.Millisecond
	var buf bytes.Buffer
	if err := Run(&buf, env, "cluster"); err != nil {
		t.Fatalf("cluster experiment: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"3-node", "goodput", "per-node"} {
		if !strings.Contains(out, want) {
			t.Fatalf("experiment output missing %q:\n%s", want, out)
		}
	}
}
