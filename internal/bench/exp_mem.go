package bench

import (
	"fmt"
	"io"
	"os"
	"runtime/debug"
	"time"

	"pretzel/internal/blackbox"
	"pretzel/internal/metrics"
	"pretzel/internal/oven"
	"pretzel/internal/pipeline"
	"pretzel/internal/runtime"
	"pretzel/internal/store"
	"pretzel/internal/vector"
)

// memCurve is a cumulative-memory series: heap usage after loading the
// first k models, sampled at checkpoints.
type memCurve struct {
	label    string
	points   []int // model counts
	heap     []uint64
	loadTime time.Duration
}

// sampleEvery picks ~8 checkpoints over n models.
func sampleEvery(n int) int {
	s := n / 8
	if s < 1 {
		s = 1
	}
	return s
}

// runFig8 measures cumulative memory for the four configurations of
// Fig. 8 — PRETZEL, PRETZEL without Object Store, ML.Net (plain engine)
// and ML.Net+Clipper (containers) — over both pipeline categories, plus
// the §5.1 load-time comparison.
func runFig8(w io.Writer, env *Env) error {
	sa, err := env.SA()
	if err != nil {
		return err
	}
	ac, err := env.AC()
	if err != nil {
		return err
	}
	names := func(ps []*pipeline.Pipeline) []string {
		out := make([]string, len(ps))
		for i, p := range ps {
			out[i] = p.Name
		}
		return out
	}
	for _, set := range []struct {
		label string
		files []string
		names []string
	}{
		{"SA", sa.Files, names(sa.Set.Pipelines)},
		{"AC", ac.Files, names(ac.Set.Pipelines)},
	} {
		fmt.Fprintf(w, "[%s] cumulative heap after loading k models:\n", set.label)
		curves := []func() (*memCurve, error){
			func() (*memCurve, error) { return memPretzel(set.files, true) },
			func() (*memCurve, error) { return memPretzel(set.files, false) },
			func() (*memCurve, error) { return memBlackbox(set.files, set.names) },
			func() (*memCurve, error) { return memClipper(set.files, set.names, env) },
		}
		for _, build := range curves {
			c, err := build()
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "  %-24s load=%-10v", c.label, c.loadTime.Round(time.Millisecond))
			for i, k := range c.points {
				fmt.Fprintf(w, " k=%d:%s", k, mb(c.heap[i]))
			}
			fmt.Fprintln(w)
			debug.FreeOSMemory()
		}
	}
	return nil
}

// memPretzel loads models into a PRETZEL runtime (with or without the
// Object Store) and samples the heap.
func memPretzel(files []string, withStore bool) (*memCurve, error) {
	label := "pretzel"
	var objStore *store.ObjectStore
	resolve := pipeline.DefaultResolver
	if withStore {
		objStore = store.New()
		resolve = cacheResolver(store.NewOpCache())
	} else {
		label = "pretzel(no ObjStore)"
	}
	rt := runtime.New(objStore, runtime.Config{Executors: 1})
	defer rt.Close()
	c := &memCurve{label: label}
	base := metrics.HeapInUse()
	every := sampleEvery(len(files))
	t0 := time.Now()
	var loadTotal time.Duration
	for i, f := range files {
		raw, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		p, err := pipeline.ImportBytesWith(raw, resolve)
		if err != nil {
			return nil, err
		}
		pl, err := oven.Compile(p, objStore, oven.DefaultOptions())
		if err != nil {
			return nil, err
		}
		if _, err := rt.Register(pl); err != nil {
			return nil, err
		}
		if (i+1)%every == 0 || i == len(files)-1 {
			loadTotal += time.Since(t0) // exclude GC sampling from load time
			c.points = append(c.points, i+1)
			c.heap = append(c.heap, heapDelta(base))
			t0 = time.Now()
		}
	}
	c.loadTime = loadTotal
	return c, nil
}

// memBlackbox loads + warms models in the ML.Net-style engine.
func memBlackbox(files []string, names []string) (*memCurve, error) {
	eng := blackbox.NewEngine()
	c := &memCurve{label: "ml.net(blackbox)"}
	base := metrics.HeapInUse()
	every := sampleEvery(len(files))
	t0 := time.Now()
	var loadTotal time.Duration
	for i, f := range files {
		if err := eng.LoadFile(names[i], f); err != nil {
			return nil, err
		}
		if err := eng.Warm(names[i]); err != nil {
			return nil, err
		}
		if (i+1)%every == 0 || i == len(files)-1 {
			loadTotal += time.Since(t0)
			c.points = append(c.points, i+1)
			c.heap = append(c.heap, heapDelta(base))
			t0 = time.Now()
		}
	}
	c.loadTime = loadTotal
	return c, nil
}

// memClipper deploys + warms one container per model.
func memClipper(files []string, names []string, env *Env) (*memCurve, error) {
	orch := blackbox.NewOrchestrator()
	defer orch.StopAll()
	c := &memCurve{label: "ml.net+clipper"}
	base := metrics.HeapInUse()
	every := sampleEvery(len(files))
	t0 := time.Now()
	var loadTotal time.Duration
	for i, f := range files {
		if err := orch.DeployFile(names[i], f); err != nil {
			return nil, err
		}
		if err := orch.Warm(names[i]); err != nil {
			return nil, err
		}
		if (i+1)%every == 0 || i == len(files)-1 {
			loadTotal += time.Since(t0)
			c.points = append(c.points, i+1)
			c.heap = append(c.heap, heapDelta(base))
			t0 = time.Now()
		}
	}
	c.loadTime = loadTotal
	return c, nil
}

// heapDelta returns live heap growth over the base snapshot.
func heapDelta(base uint64) uint64 {
	h := metrics.HeapInUse()
	if h < base {
		return 0
	}
	return h - base
}

// warmRuntime issues one prediction per model so pools and caches are
// primed (used by latency experiments).
func warmRuntime(rt *runtime.Runtime, names []string, input string, iters int) error {
	in, out := vector.New(0), vector.New(0)
	for _, n := range names {
		for k := 0; k < iters; k++ {
			in.SetText(input)
			if err := rt.Predict(n, in, out); err != nil {
				return err
			}
		}
	}
	return nil
}
