// Benchmark-regression gate: parse `go test -bench` output into
// per-benchmark throughput, persist it as a JSON artifact, and compare
// a current run against a committed baseline so CI fails when a gated
// benchmark's throughput drops past a threshold. The hot numbers this
// repo's PRs exist for (BenchmarkBatchStage record throughput,
// BenchmarkScalePool predictions/s) are regression-gated on every push.
package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// BenchResult is one benchmark's measurement. Throughput is the gated
// quantity: the benchmark's own rate metric (e.g. "rec/s") when it
// reports one, otherwise operations per second derived from ns/op.
type BenchResult struct {
	NsPerOp    float64 `json:"ns_per_op"`
	Throughput float64 `json:"throughput"`
	Unit       string  `json:"unit"`
}

// BenchArtifact is the JSON document written for CI (BENCH_ci.json)
// and committed as the baseline (BENCH_baseline.json).
type BenchArtifact struct {
	// Note describes how the numbers were produced.
	Note       string                 `json:"note,omitempty"`
	Benchmarks map[string]BenchResult `json:"benchmarks"`
}

// procSuffix strips the testing package's "-N" GOMAXPROCS suffix so
// baselines compare across -cpu settings of the same benchmark name.
var procSuffix = regexp.MustCompile(`-\d+$`)

// ParseBenchOutput extracts benchmark results from `go test -bench`
// output. With -count > 1 the same benchmark appears multiple times;
// the BEST (highest-throughput) run wins, which is the standard way to
// damp scheduler noise in a gate.
func ParseBenchOutput(r io.Reader) (map[string]BenchResult, error) {
	out := make(map[string]BenchResult)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// name, iterations, then value/unit pairs.
		if len(fields) < 4 {
			continue
		}
		name := procSuffix.ReplaceAllString(fields[0], "")
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // not a result line (e.g. "BenchmarkFoo\t--- FAIL")
		}
		res := BenchResult{}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch unit := fields[i+1]; {
			case unit == "ns/op":
				res.NsPerOp = val
			case strings.HasSuffix(unit, "/s") && unit != "B/s":
				// A rate metric the benchmark reported itself
				// (rec/s, req/s, …) — prefer it over derived ops/s.
				res.Throughput = val
				res.Unit = unit
			}
		}
		if res.Throughput == 0 && res.NsPerOp > 0 {
			res.Throughput = 1e9 / res.NsPerOp
			res.Unit = "op/s"
		}
		if res.Throughput == 0 {
			continue
		}
		if prev, ok := out[name]; !ok || res.Throughput > prev.Throughput {
			out[name] = res
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchgate: no benchmark results found in input")
	}
	return out, nil
}

// GateFinding is one gated benchmark's verdict.
type GateFinding struct {
	Name     string
	Baseline float64
	Current  float64
	// Delta is the relative throughput change (negative = regression).
	Delta  float64
	Failed bool
	// Missing marks a gated baseline benchmark absent from the run.
	Missing bool
}

// CompareBenchmarks gates the current results against a baseline: every
// baseline benchmark whose name matches gate must be present and keep
// its throughput above (1 - threshold) × baseline. Results are sorted
// by name; callers fail CI when any finding has Failed set.
func CompareBenchmarks(baseline, current map[string]BenchResult, gate *regexp.Regexp, threshold float64) []GateFinding {
	var out []GateFinding
	names := make([]string, 0, len(baseline))
	for n := range baseline {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if gate != nil && !gate.MatchString(n) {
			continue
		}
		base := baseline[n]
		cur, ok := current[n]
		if !ok {
			out = append(out, GateFinding{Name: n, Baseline: base.Throughput, Failed: true, Missing: true})
			continue
		}
		delta := 0.0
		if base.Throughput > 0 {
			delta = (cur.Throughput - base.Throughput) / base.Throughput
		}
		out = append(out, GateFinding{
			Name:     n,
			Baseline: base.Throughput,
			Current:  cur.Throughput,
			Delta:    delta,
			Failed:   delta < -threshold,
		})
	}
	return out
}

// WriteBenchArtifact serializes results as the gate's JSON document.
func WriteBenchArtifact(w io.Writer, note string, results map[string]BenchResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(BenchArtifact{Note: note, Benchmarks: results})
}

// ReadBenchArtifact deserializes a gate JSON document.
func ReadBenchArtifact(r io.Reader) (map[string]BenchResult, error) {
	var a BenchArtifact
	if err := json.NewDecoder(r).Decode(&a); err != nil {
		return nil, fmt.Errorf("benchgate: decoding artifact: %w", err)
	}
	if len(a.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchgate: artifact has no benchmarks")
	}
	return a.Benchmarks, nil
}
