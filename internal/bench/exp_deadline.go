package bench

import (
	"errors"
	"fmt"
	"io"
	"time"

	"pretzel/internal/oven"
	"pretzel/internal/runtime"
	"pretzel/internal/store"
	"pretzel/internal/vector"
)

// runDeadline measures deadline-aware scheduling on the batch engine:
// every request carries an absolute deadline, and the scheduler drops
// expired jobs before stage dispatch, so a saturated server sheds the
// work it can no longer finish in time instead of burning kernels on
// answers nobody is waiting for. Rows sweep the per-request budget from
// "none" down to "already expired"; the final line shows the
// scheduler's own white-box accounting of the same run.
func runDeadline(w io.Writer, env *Env) error {
	sa, err := env.SA()
	if err != nil {
		return err
	}
	names := planNames(sa.Files)
	n := len(names)
	if n > 8 {
		n = 8
	}
	names, files := names[:n], sa.Files[:n]
	input := sa.Set.TestInputs[0]
	total := 4000
	if env.Quick {
		total = 400
	}

	objStore := store.New()
	rt := runtime.New(objStore, runtime.Config{Executors: 2})
	defer rt.Close()
	if _, err := loadPretzel(rt, objStore, files, oven.DefaultOptions()); err != nil {
		return err
	}
	if err := warmRuntime(rt, names, input, 2); err != nil {
		return err
	}

	budgets := []struct {
		label  string
		budget time.Duration // 0 = none, <0 = already expired
	}{
		{"none", 0},
		{"50ms", 50 * time.Millisecond},
		{"expired", -time.Millisecond},
	}
	fmt.Fprintf(w, "deadline-aware batch engine, %d models, %d requests per row:\n", n, total)
	for _, b := range budgets {
		completed, expired := 0, 0
		tickets := make([]*runtime.Ticket, 0, total)
		ins := make([]*vector.Vector, total)
		outs := make([]*vector.Vector, total)
		var deadline time.Time
		if b.budget != 0 {
			deadline = time.Now().Add(b.budget)
		}
		for i := 0; i < total; i++ {
			ins[i], outs[i] = vector.New(0), vector.New(0)
			ins[i].SetText(input)
			t, err := rt.SubmitRequest(runtime.Request{
				Model:    names[i%len(names)],
				In:       ins[i],
				Out:      outs[i],
				Deadline: deadline,
			})
			if err != nil {
				if errors.Is(err, runtime.ErrDeadlineExceeded) {
					expired++
					continue
				}
				return err
			}
			tickets = append(tickets, t)
		}
		for _, t := range tickets {
			switch err := t.Wait(); {
			case err == nil:
				completed++
			case errors.Is(err, runtime.ErrDeadlineExceeded):
				expired++
			default:
				return err
			}
		}
		fmt.Fprintf(w, "  budget=%-8s completed=%-6d expired=%-6d\n", b.label, completed, expired)
	}
	st := rt.SchedStats()
	fmt.Fprintf(w, "  scheduler: submitted=%d completed=%d failed=%d expired=%d\n",
		st.Submitted, st.Completed, st.Failed, st.Expired)
	fmt.Fprintf(w, "  (already-expired requests are rejected at admission, before the scheduler;\n")
	fmt.Fprintf(w, "   queued jobs are re-checked before every stage dispatch and shed on expiry)\n")
	return nil
}
