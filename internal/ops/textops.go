package ops

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"pretzel/internal/schema"
	"pretzel/internal/text"
	"pretzel/internal/vector"
)

// writeJSONFrame writes a length-prefixed JSON config blob.
func writeJSONFrame(w io.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	var lb [4]byte
	binary.LittleEndian.PutUint32(lb[:], uint32(len(b)))
	if _, err := w.Write(lb[:]); err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// readJSONFrame reads a length-prefixed JSON config blob.
func readJSONFrame(r io.Reader, v any) error {
	var lb [4]byte
	if _, err := io.ReadFull(r, lb[:]); err != nil {
		return err
	}
	n := binary.LittleEndian.Uint32(lb[:])
	if n > 1<<24 {
		return fmt.Errorf("ops: implausible config size %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	return json.Unmarshal(buf, v)
}

// --- CSVSelect ---

// CSVSelect parses a separated-values line and selects one field as text
// (Flour's CSV.FromText(...).WithSchema(...).Select(col)).
type CSVSelect struct {
	Sep   byte
	Field int
}

// Info implements Op.
func (o *CSVSelect) Info() Info {
	return Info{Kind: "CSVSelect", NInputs: 1, MemoryBound: true}
}

// OutSchema implements Op.
func (o *CSVSelect) OutSchema(in []*schema.Schema) (*schema.Schema, error) {
	if len(in) != 1 {
		return nil, errInputs("CSVSelect", 1, len(in))
	}
	if err := in[0].CheckKind("CSVSelect", schema.ColText); err != nil {
		return nil, err
	}
	return schema.Text("field"), nil
}

// Transform implements Op.
func (o *CSVSelect) Transform(in []*vector.Vector, out *vector.Vector) error {
	if len(in) != 1 || in[0].Kind != vector.KindText {
		return fmt.Errorf("ops: CSVSelect needs one text input")
	}
	line := in[0].Text
	// Scan to the o.Field-th separator-delimited field, honouring simple
	// double-quote escaping.
	idx := 0
	start := 0
	inQuote := false
	for i := 0; i <= len(line); i++ {
		if i < len(line) && line[i] == '"' {
			inQuote = !inQuote
			continue
		}
		if i == len(line) || (line[i] == o.Sep && !inQuote) {
			if idx == o.Field {
				out.SetText(strings.Trim(line[start:i], `"`))
				return nil
			}
			idx++
			start = i + 1
		}
	}
	return fmt.Errorf("ops: CSVSelect field %d out of range (line has %d fields)", o.Field, idx)
}

// Params implements Op (no shareable parameters).
func (o *CSVSelect) Params() []Param { return nil }

// SetParams implements Op.
func (o *CSVSelect) SetParams(ps []Param) error {
	if len(ps) != 0 {
		return fmt.Errorf("ops: CSVSelect takes no params")
	}
	return nil
}

// WriteParams implements Op.
func (o *CSVSelect) WriteParams(w io.Writer) error { return writeJSONFrame(w, o) }

func init() {
	register("CSVSelect", func(r io.Reader) (Op, error) {
		o := &CSVSelect{}
		return o, readJSONFrame(r, o)
	})
}

// --- Tokenizer ---

// Tokenizer splits text into lowercase tokens.
type Tokenizer struct{}

// Info implements Op.
func (o *Tokenizer) Info() Info {
	return Info{Kind: "Tokenizer", NInputs: 1, MemoryBound: true}
}

// OutSchema implements Op.
func (o *Tokenizer) OutSchema(in []*schema.Schema) (*schema.Schema, error) {
	if len(in) != 1 {
		return nil, errInputs("Tokenizer", 1, len(in))
	}
	if err := in[0].CheckKind("Tokenizer", schema.ColText); err != nil {
		return nil, err
	}
	return schema.Tokens("tokens"), nil
}

// Transform implements Op.
func (o *Tokenizer) Transform(in []*vector.Vector, out *vector.Vector) error {
	if len(in) != 1 || in[0].Kind != vector.KindText {
		return fmt.Errorf("ops: Tokenizer needs one text input")
	}
	out.Reset()
	out.Kind = vector.KindTokens
	out.Tokens = text.Tokenize(in[0].Text, out.Tokens[:0])
	return nil
}

// Params implements Op.
func (o *Tokenizer) Params() []Param { return nil }

// SetParams implements Op.
func (o *Tokenizer) SetParams(ps []Param) error {
	if len(ps) != 0 {
		return fmt.Errorf("ops: Tokenizer takes no params")
	}
	return nil
}

// WriteParams implements Op.
func (o *Tokenizer) WriteParams(w io.Writer) error { return writeJSONFrame(w, o) }

func init() {
	register("Tokenizer", func(r io.Reader) (Op, error) {
		o := &Tokenizer{}
		return o, readJSONFrame(r, o)
	})
}

// --- CharNgram ---

// CharNgram extracts dictionary-mapped character n-grams from tokens,
// producing a sparse count vector.
type CharNgram struct {
	MinN, MaxN int
	Dict       *text.Dict `json:"-"`
}

// Info implements Op.
func (o *CharNgram) Info() Info {
	return Info{Kind: "CharNgram", NInputs: 1, MemoryBound: true}
}

// Dim returns the output dimensionality.
func (o *CharNgram) Dim() int { return o.Dict.Size() }

// OutSchema implements Op.
func (o *CharNgram) OutSchema(in []*schema.Schema) (*schema.Schema, error) {
	if len(in) != 1 {
		return nil, errInputs("CharNgram", 1, len(in))
	}
	if err := in[0].CheckKind("CharNgram", schema.ColTokens); err != nil {
		return nil, err
	}
	return schema.Vector("cngrams", o.Dim(), true), nil
}

// Transform implements Op.
func (o *CharNgram) Transform(in []*vector.Vector, out *vector.Vector) error {
	if len(in) != 1 || in[0].Kind != vector.KindTokens {
		return fmt.Errorf("ops: CharNgram needs one tokens input")
	}
	out.UseSparse(o.Dim())
	cfg := text.CharNgramConfig{MinN: o.MinN, MaxN: o.MaxN, Dict: o.Dict}
	cfg.ExtractTokens(in[0].Tokens, func(ix int32) { out.AppendSparse(ix, 1) })
	out.SortSparse()
	return nil
}

// Params implements Op.
func (o *CharNgram) Params() []Param { return []Param{o.Dict} }

// SetParams implements Op.
func (o *CharNgram) SetParams(ps []Param) error {
	if len(ps) != 1 {
		return fmt.Errorf("ops: CharNgram takes 1 param, got %d", len(ps))
	}
	d, ok := ps[0].(*text.Dict)
	if !ok {
		return fmt.Errorf("ops: CharNgram param must be *text.Dict, got %T", ps[0])
	}
	o.Dict = d
	return nil
}

// WriteParams implements Op.
func (o *CharNgram) WriteParams(w io.Writer) error {
	if err := writeJSONFrame(w, o); err != nil {
		return err
	}
	_, err := o.Dict.WriteTo(w)
	return err
}

func init() {
	register("CharNgram", func(r io.Reader) (Op, error) {
		o := &CharNgram{}
		if err := readJSONFrame(r, o); err != nil {
			return nil, err
		}
		d, err := text.ReadDict(r)
		if err != nil {
			return nil, err
		}
		o.Dict = d
		return o, nil
	})
}

// --- WordNgram ---

// WordNgram extracts dictionary-mapped word n-grams from tokens,
// producing a sparse count vector.
type WordNgram struct {
	MaxN int
	Dict *text.Dict `json:"-"`
}

// Info implements Op.
func (o *WordNgram) Info() Info {
	return Info{Kind: "WordNgram", NInputs: 1, MemoryBound: true}
}

// Dim returns the output dimensionality.
func (o *WordNgram) Dim() int { return o.Dict.Size() }

// OutSchema implements Op.
func (o *WordNgram) OutSchema(in []*schema.Schema) (*schema.Schema, error) {
	if len(in) != 1 {
		return nil, errInputs("WordNgram", 1, len(in))
	}
	if err := in[0].CheckKind("WordNgram", schema.ColTokens); err != nil {
		return nil, err
	}
	return schema.Vector("wngrams", o.Dim(), true), nil
}

// Transform implements Op.
func (o *WordNgram) Transform(in []*vector.Vector, out *vector.Vector) error {
	if len(in) != 1 || in[0].Kind != vector.KindTokens {
		return fmt.Errorf("ops: WordNgram needs one tokens input")
	}
	out.UseSparse(o.Dim())
	cfg := text.WordNgramConfig{MaxN: o.MaxN, Dict: o.Dict}
	var scratch [64]byte
	cfg.ExtractTokens(in[0].Tokens, scratch[:0], func(ix int32) { out.AppendSparse(ix, 1) })
	out.SortSparse()
	return nil
}

// Params implements Op.
func (o *WordNgram) Params() []Param { return []Param{o.Dict} }

// SetParams implements Op.
func (o *WordNgram) SetParams(ps []Param) error {
	if len(ps) != 1 {
		return fmt.Errorf("ops: WordNgram takes 1 param, got %d", len(ps))
	}
	d, ok := ps[0].(*text.Dict)
	if !ok {
		return fmt.Errorf("ops: WordNgram param must be *text.Dict, got %T", ps[0])
	}
	o.Dict = d
	return nil
}

// WriteParams implements Op.
func (o *WordNgram) WriteParams(w io.Writer) error {
	if err := writeJSONFrame(w, o); err != nil {
		return err
	}
	_, err := o.Dict.WriteTo(w)
	return err
}

func init() {
	register("WordNgram", func(r io.Reader) (Op, error) {
		o := &WordNgram{}
		if err := readJSONFrame(r, o); err != nil {
			return nil, err
		}
		d, err := text.ReadDict(r)
		if err != nil {
			return nil, err
		}
		o.Dict = d
		return o, nil
	})
}

// --- HashNgram ---

// HashNgram is the dictionary-free hashing featurizer over tokens.
type HashNgram struct {
	Bits int
	Word bool
	MaxN int
}

// Info implements Op.
func (o *HashNgram) Info() Info {
	return Info{Kind: "HashNgram", NInputs: 1, MemoryBound: true}
}

// Dim returns the output dimensionality.
func (o *HashNgram) Dim() int { return 1 << o.Bits }

// OutSchema implements Op.
func (o *HashNgram) OutSchema(in []*schema.Schema) (*schema.Schema, error) {
	if len(in) != 1 {
		return nil, errInputs("HashNgram", 1, len(in))
	}
	if err := in[0].CheckKind("HashNgram", schema.ColTokens); err != nil {
		return nil, err
	}
	return schema.Vector("hngrams", o.Dim(), true), nil
}

// Transform implements Op.
func (o *HashNgram) Transform(in []*vector.Vector, out *vector.Vector) error {
	if len(in) != 1 || in[0].Kind != vector.KindTokens {
		return fmt.Errorf("ops: HashNgram needs one tokens input")
	}
	out.UseSparse(o.Dim())
	cfg := text.HashNgramConfig{Bits: o.Bits, Word: o.Word, MaxN: o.MaxN}
	for _, tok := range in[0].Tokens {
		cfg.HashToken([]byte(tok), func(ix int32) { out.AppendSparse(ix, 1) })
	}
	out.SortSparse()
	return nil
}

// Params implements Op.
func (o *HashNgram) Params() []Param { return nil }

// SetParams implements Op.
func (o *HashNgram) SetParams(ps []Param) error {
	if len(ps) != 0 {
		return fmt.Errorf("ops: HashNgram takes no params")
	}
	return nil
}

// WriteParams implements Op.
func (o *HashNgram) WriteParams(w io.Writer) error { return writeJSONFrame(w, o) }

func init() {
	register("HashNgram", func(r io.Reader) (Op, error) {
		o := &HashNgram{}
		return o, readJSONFrame(r, o)
	})
}
