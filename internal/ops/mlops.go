package ops

import (
	"fmt"
	"io"

	"pretzel/internal/linalg"
	"pretzel/internal/ml"
	"pretzel/internal/schema"
	"pretzel/internal/vector"
)

// --- PCATransform ---

// PCATransform projects a dense vector onto trained principal components
// (compute-bound: a small dense GEMV).
type PCATransform struct {
	Model *ml.PCA `json:"-"`
}

// Info implements Op.
func (o *PCATransform) Info() Info {
	return Info{Kind: "PCATransform", NInputs: 1, ComputeBound: true}
}

// OutSchema implements Op.
func (o *PCATransform) OutSchema(in []*schema.Schema) (*schema.Schema, error) {
	if len(in) != 1 {
		return nil, errInputs("PCATransform", 1, len(in))
	}
	c, err := in[0].Single()
	if err != nil {
		return nil, err
	}
	if c.Kind != schema.ColVector {
		return nil, &schema.MismatchError{Op: "PCATransform", Want: schema.ColVector, Got: c.Kind}
	}
	if c.Dim != 0 && c.Dim != o.Model.Dim {
		return nil, fmt.Errorf("ops: PCATransform trained on dim %d, input dim %d", o.Model.Dim, c.Dim)
	}
	return schema.Vector("pca", o.Model.K, false), nil
}

// Transform implements Op.
func (o *PCATransform) Transform(in []*vector.Vector, out *vector.Vector) error {
	if len(in) != 1 || in[0].Kind != vector.KindDense {
		return fmt.Errorf("ops: PCATransform needs one dense input")
	}
	d := out.UseDense(o.Model.K)
	o.Model.Project(in[0].Dense, d)
	return nil
}

// Params implements Op.
func (o *PCATransform) Params() []Param { return []Param{o.Model} }

// SetParams implements Op.
func (o *PCATransform) SetParams(ps []Param) error {
	if len(ps) != 1 {
		return fmt.Errorf("ops: PCATransform takes 1 param, got %d", len(ps))
	}
	m, ok := ps[0].(*ml.PCA)
	if !ok {
		return fmt.Errorf("ops: PCATransform param must be *ml.PCA, got %T", ps[0])
	}
	o.Model = m
	return nil
}

// WriteParams implements Op.
func (o *PCATransform) WriteParams(w io.Writer) error {
	if err := writeJSONFrame(w, o); err != nil {
		return err
	}
	_, err := o.Model.WriteTo(w)
	return err
}

func init() {
	register("PCATransform", func(r io.Reader) (Op, error) {
		o := &PCATransform{}
		if err := readJSONFrame(r, o); err != nil {
			return nil, err
		}
		m, err := ml.ReadPCA(r)
		if err != nil {
			return nil, err
		}
		o.Model = m
		return o, nil
	})
}

// --- KMeansTransform ---

// KMeansTransform maps a dense vector to its squared distances to the
// trained centroids (compute-bound).
type KMeansTransform struct {
	Model *ml.KMeans `json:"-"`
}

// Info implements Op.
func (o *KMeansTransform) Info() Info {
	return Info{Kind: "KMeansTransform", NInputs: 1, ComputeBound: true}
}

// OutSchema implements Op.
func (o *KMeansTransform) OutSchema(in []*schema.Schema) (*schema.Schema, error) {
	if len(in) != 1 {
		return nil, errInputs("KMeansTransform", 1, len(in))
	}
	c, err := in[0].Single()
	if err != nil {
		return nil, err
	}
	if c.Kind != schema.ColVector {
		return nil, &schema.MismatchError{Op: "KMeansTransform", Want: schema.ColVector, Got: c.Kind}
	}
	if c.Dim != 0 && c.Dim != o.Model.Dim {
		return nil, fmt.Errorf("ops: KMeansTransform trained on dim %d, input dim %d", o.Model.Dim, c.Dim)
	}
	return schema.Vector("kmeans", o.Model.K, false), nil
}

// Transform implements Op.
func (o *KMeansTransform) Transform(in []*vector.Vector, out *vector.Vector) error {
	if len(in) != 1 || in[0].Kind != vector.KindDense {
		return fmt.Errorf("ops: KMeansTransform needs one dense input")
	}
	d := out.UseDense(o.Model.K)
	o.Model.Distances(in[0].Dense, d)
	return nil
}

// Params implements Op.
func (o *KMeansTransform) Params() []Param { return []Param{o.Model} }

// SetParams implements Op.
func (o *KMeansTransform) SetParams(ps []Param) error {
	if len(ps) != 1 {
		return fmt.Errorf("ops: KMeansTransform takes 1 param, got %d", len(ps))
	}
	m, ok := ps[0].(*ml.KMeans)
	if !ok {
		return fmt.Errorf("ops: KMeansTransform param must be *ml.KMeans, got %T", ps[0])
	}
	o.Model = m
	return nil
}

// WriteParams implements Op.
func (o *KMeansTransform) WriteParams(w io.Writer) error {
	if err := writeJSONFrame(w, o); err != nil {
		return err
	}
	_, err := o.Model.WriteTo(w)
	return err
}

func init() {
	register("KMeansTransform", func(r io.Reader) (Op, error) {
		o := &KMeansTransform{}
		if err := readJSONFrame(r, o); err != nil {
			return nil, err
		}
		m, err := ml.ReadKMeans(r)
		if err != nil {
			return nil, err
		}
		o.Model = m
		return o, nil
	})
}

// --- TreeFeaturize ---

// TreeFeaturize maps a dense vector to the sparse one-hot encoding of the
// leaves it reaches in a trained forest.
type TreeFeaturize struct {
	feat   *ml.TreeFeaturizer
	Forest *ml.Forest `json:"-"`
}

// NewTreeFeaturize wraps a trained forest.
func NewTreeFeaturize(f *ml.Forest) *TreeFeaturize {
	return &TreeFeaturize{Forest: f, feat: ml.NewTreeFeaturizer(f)}
}

// Info implements Op.
func (o *TreeFeaturize) Info() Info {
	return Info{Kind: "TreeFeaturize", NInputs: 1, ComputeBound: true}
}

// OutSchema implements Op.
func (o *TreeFeaturize) OutSchema(in []*schema.Schema) (*schema.Schema, error) {
	if len(in) != 1 {
		return nil, errInputs("TreeFeaturize", 1, len(in))
	}
	c, err := in[0].Single()
	if err != nil {
		return nil, err
	}
	if c.Kind != schema.ColVector {
		return nil, &schema.MismatchError{Op: "TreeFeaturize", Want: schema.ColVector, Got: c.Kind}
	}
	return schema.Vector("leaves", o.feat.Dim(), false), nil
}

// Transform implements Op. The leaf one-hots are emitted densely so the
// output can feed tree ensembles downstream (leaf counts are moderate).
func (o *TreeFeaturize) Transform(in []*vector.Vector, out *vector.Vector) error {
	if len(in) != 1 || in[0].Kind != vector.KindDense {
		return fmt.Errorf("ops: TreeFeaturize needs one dense input")
	}
	d := out.UseDense(o.feat.Dim())
	o.feat.Featurize(in[0].Dense, func(ix int32, v float32) { d[ix] = v })
	return nil
}

// Params implements Op.
func (o *TreeFeaturize) Params() []Param { return []Param{o.Forest} }

// SetParams implements Op.
func (o *TreeFeaturize) SetParams(ps []Param) error {
	if len(ps) != 1 {
		return fmt.Errorf("ops: TreeFeaturize takes 1 param, got %d", len(ps))
	}
	f, ok := ps[0].(*ml.Forest)
	if !ok {
		return fmt.Errorf("ops: TreeFeaturize param must be *ml.Forest, got %T", ps[0])
	}
	o.Forest = f
	o.feat = ml.NewTreeFeaturizer(f)
	return nil
}

// WriteParams implements Op.
func (o *TreeFeaturize) WriteParams(w io.Writer) error {
	if err := writeJSONFrame(w, o); err != nil {
		return err
	}
	_, err := o.Forest.WriteTo(w)
	return err
}

func init() {
	register("TreeFeaturize", func(r io.Reader) (Op, error) {
		o := &TreeFeaturize{}
		if err := readJSONFrame(r, o); err != nil {
			return nil, err
		}
		f, err := ml.ReadForest(r)
		if err != nil {
			return nil, err
		}
		o.Forest = f
		o.feat = ml.NewTreeFeaturizer(f)
		return o, nil
	})
}

// --- LinearPredictor ---

// LinearPredictor scores a feature vector with a trained linear model.
// It is commutative+associative over concatenation (a dot product), which
// lets the optimizer push it through Concat (§4.1.2 rule 4).
type LinearPredictor struct {
	Model *ml.LinearModel `json:"-"`
}

// Info implements Op.
func (o *LinearPredictor) Info() Info {
	return Info{Kind: "LinearPredictor", NInputs: 1, ComputeBound: true, Commutative: true, Predictor: true}
}

// OutSchema implements Op.
func (o *LinearPredictor) OutSchema(in []*schema.Schema) (*schema.Schema, error) {
	if len(in) != 1 {
		return nil, errInputs("LinearPredictor", 1, len(in))
	}
	c, err := in[0].Single()
	if err != nil {
		return nil, err
	}
	if c.Kind != schema.ColVector {
		return nil, &schema.MismatchError{Op: "LinearPredictor", Want: schema.ColVector, Got: c.Kind}
	}
	if c.Dim != 0 && c.Dim != o.Model.Dim() {
		return nil, fmt.Errorf("ops: LinearPredictor trained on dim %d, input dim %d", o.Model.Dim(), c.Dim)
	}
	return schema.Scalar("prediction"), nil
}

// Transform implements Op.
func (o *LinearPredictor) Transform(in []*vector.Vector, out *vector.Vector) error {
	if len(in) != 1 {
		return errInputs("LinearPredictor", 1, len(in))
	}
	var score float32
	switch in[0].Kind {
	case vector.KindDense:
		score = o.Model.Score(in[0].Dense)
	case vector.KindSparse:
		score = o.Model.ScoreSparse(in[0].Idx, in[0].Val)
	default:
		return fmt.Errorf("ops: LinearPredictor needs a vector input, got %s", in[0].Kind)
	}
	d := out.UseDense(1)
	d[0] = score
	return nil
}

// Params implements Op.
func (o *LinearPredictor) Params() []Param { return []Param{o.Model} }

// SetParams implements Op.
func (o *LinearPredictor) SetParams(ps []Param) error {
	if len(ps) != 1 {
		return fmt.Errorf("ops: LinearPredictor takes 1 param, got %d", len(ps))
	}
	m, ok := ps[0].(*ml.LinearModel)
	if !ok {
		return fmt.Errorf("ops: LinearPredictor param must be *ml.LinearModel, got %T", ps[0])
	}
	o.Model = m
	return nil
}

// WriteParams implements Op.
func (o *LinearPredictor) WriteParams(w io.Writer) error {
	if err := writeJSONFrame(w, o); err != nil {
		return err
	}
	_, err := o.Model.WriteTo(w)
	return err
}

func init() {
	register("LinearPredictor", func(r io.Reader) (Op, error) {
		o := &LinearPredictor{}
		if err := readJSONFrame(r, o); err != nil {
			return nil, err
		}
		m, err := ml.ReadLinearModel(r)
		if err != nil {
			return nil, err
		}
		o.Model = m
		return o, nil
	})
}

// --- ForestPredictor ---

// ForestPredictor scores a dense feature vector with a trained forest.
type ForestPredictor struct {
	Model *ml.Forest `json:"-"`
}

// Info implements Op.
func (o *ForestPredictor) Info() Info {
	return Info{Kind: "ForestPredictor", NInputs: 1, ComputeBound: true, Predictor: true}
}

// OutSchema implements Op.
func (o *ForestPredictor) OutSchema(in []*schema.Schema) (*schema.Schema, error) {
	if len(in) != 1 {
		return nil, errInputs("ForestPredictor", 1, len(in))
	}
	c, err := in[0].Single()
	if err != nil {
		return nil, err
	}
	if c.Kind != schema.ColVector {
		return nil, &schema.MismatchError{Op: "ForestPredictor", Want: schema.ColVector, Got: c.Kind}
	}
	return schema.Scalar("prediction"), nil
}

// Transform implements Op.
func (o *ForestPredictor) Transform(in []*vector.Vector, out *vector.Vector) error {
	if len(in) != 1 || in[0].Kind != vector.KindDense {
		return fmt.Errorf("ops: ForestPredictor needs one dense input")
	}
	d := out.UseDense(1)
	d[0] = o.Model.Predict(in[0].Dense)
	return nil
}

// Params implements Op.
func (o *ForestPredictor) Params() []Param { return []Param{o.Model} }

// SetParams implements Op.
func (o *ForestPredictor) SetParams(ps []Param) error {
	if len(ps) != 1 {
		return fmt.Errorf("ops: ForestPredictor takes 1 param, got %d", len(ps))
	}
	m, ok := ps[0].(*ml.Forest)
	if !ok {
		return fmt.Errorf("ops: ForestPredictor param must be *ml.Forest, got %T", ps[0])
	}
	o.Model = m
	return nil
}

// WriteParams implements Op.
func (o *ForestPredictor) WriteParams(w io.Writer) error {
	if err := writeJSONFrame(w, o); err != nil {
		return err
	}
	_, err := o.Model.WriteTo(w)
	return err
}

func init() {
	register("ForestPredictor", func(r io.Reader) (Op, error) {
		o := &ForestPredictor{}
		if err := readJSONFrame(r, o); err != nil {
			return nil, err
		}
		m, err := ml.ReadForest(r)
		if err != nil {
			return nil, err
		}
		o.Model = m
		return o, nil
	})
}

// --- MultiClassPredictor ---

// MultiClassPredictor scores a dense vector with a one-vs-rest forest
// classifier, producing the per-class probability vector.
type MultiClassPredictor struct {
	Model *ml.MultiClassForest `json:"-"`
}

// Info implements Op.
func (o *MultiClassPredictor) Info() Info {
	return Info{Kind: "MultiClassPredictor", NInputs: 1, ComputeBound: true}
}

// OutSchema implements Op.
func (o *MultiClassPredictor) OutSchema(in []*schema.Schema) (*schema.Schema, error) {
	if len(in) != 1 {
		return nil, errInputs("MultiClassPredictor", 1, len(in))
	}
	c, err := in[0].Single()
	if err != nil {
		return nil, err
	}
	if c.Kind != schema.ColVector {
		return nil, &schema.MismatchError{Op: "MultiClassPredictor", Want: schema.ColVector, Got: c.Kind}
	}
	return schema.Vector("classprobs", o.Model.NumClasses(), false), nil
}

// Transform implements Op.
func (o *MultiClassPredictor) Transform(in []*vector.Vector, out *vector.Vector) error {
	if len(in) != 1 || in[0].Kind != vector.KindDense {
		return fmt.Errorf("ops: MultiClassPredictor needs one dense input")
	}
	d := out.UseDense(o.Model.NumClasses())
	o.Model.Scores(in[0].Dense, d)
	return nil
}

// Params implements Op.
func (o *MultiClassPredictor) Params() []Param { return []Param{o.Model} }

// SetParams implements Op.
func (o *MultiClassPredictor) SetParams(ps []Param) error {
	if len(ps) != 1 {
		return fmt.Errorf("ops: MultiClassPredictor takes 1 param, got %d", len(ps))
	}
	m, ok := ps[0].(*ml.MultiClassForest)
	if !ok {
		return fmt.Errorf("ops: MultiClassPredictor param must be *ml.MultiClassForest, got %T", ps[0])
	}
	o.Model = m
	return nil
}

// WriteParams implements Op.
func (o *MultiClassPredictor) WriteParams(w io.Writer) error {
	if err := writeJSONFrame(w, o); err != nil {
		return err
	}
	_, err := o.Model.WriteTo(w)
	return err
}

func init() {
	register("MultiClassPredictor", func(r io.Reader) (Op, error) {
		o := &MultiClassPredictor{}
		if err := readJSONFrame(r, o); err != nil {
			return nil, err
		}
		m, err := ml.ReadMultiClassForest(r)
		if err != nil {
			return nil, err
		}
		o.Model = m
		return o, nil
	})
}

// --- Calibrator ---

// Calibrator applies Platt scaling (sigmoid of an affine transform) to a
// raw scalar score.
type Calibrator struct {
	A, B float32
}

// Info implements Op.
func (o *Calibrator) Info() Info {
	return Info{Kind: "Calibrator", NInputs: 1, MemoryBound: true, Predictor: true}
}

// OutSchema implements Op.
func (o *Calibrator) OutSchema(in []*schema.Schema) (*schema.Schema, error) {
	if len(in) != 1 {
		return nil, errInputs("Calibrator", 1, len(in))
	}
	c, err := in[0].Single()
	if err != nil {
		return nil, err
	}
	if c.Kind != schema.ColScalar && !(c.Kind == schema.ColVector && c.Dim == 1) {
		return nil, &schema.MismatchError{Op: "Calibrator", Want: schema.ColScalar, Got: c.Kind}
	}
	return schema.Scalar("calibrated"), nil
}

// Transform implements Op.
func (o *Calibrator) Transform(in []*vector.Vector, out *vector.Vector) error {
	if len(in) != 1 || in[0].Kind != vector.KindDense || len(in[0].Dense) < 1 {
		return fmt.Errorf("ops: Calibrator needs one scalar input")
	}
	x := in[0].Dense[0]
	d := out.UseDense(1)
	d[0] = linalg.Sigmoid(o.A*x + o.B)
	return nil
}

// Params implements Op.
func (o *Calibrator) Params() []Param { return nil }

// SetParams implements Op.
func (o *Calibrator) SetParams(ps []Param) error {
	if len(ps) != 0 {
		return fmt.Errorf("ops: Calibrator takes no params")
	}
	return nil
}

// WriteParams implements Op.
func (o *Calibrator) WriteParams(w io.Writer) error { return writeJSONFrame(w, o) }

func init() {
	register("Calibrator", func(r io.Reader) (Op, error) {
		o := &Calibrator{}
		return o, readJSONFrame(r, o)
	})
}
