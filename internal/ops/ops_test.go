package ops

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"pretzel/internal/ml"
	"pretzel/internal/schema"
	"pretzel/internal/text"
	"pretzel/internal/vector"
)

func textVec(s string) *vector.Vector {
	v := vector.New(0)
	v.SetText(s)
	return v
}

func tokensVec(toks ...string) *vector.Vector {
	v := vector.New(0)
	v.SetTokens(toks)
	return v
}

func denseVec(vals ...float32) *vector.Vector {
	v := vector.New(len(vals))
	v.SetDense(vals)
	return v
}

// roundTrip serializes an op and reads it back through the registry.
func roundTrip(t *testing.T, op Op) Op {
	t.Helper()
	var buf bytes.Buffer
	if err := op.WriteParams(&buf); err != nil {
		t.Fatalf("WriteParams(%s): %v", op.Info().Kind, err)
	}
	got, err := Read(op.Info().Kind, &buf)
	if err != nil {
		t.Fatalf("Read(%s): %v", op.Info().Kind, err)
	}
	if Checksum(got) != Checksum(op) {
		t.Fatalf("%s: checksum changed over round trip", op.Info().Kind)
	}
	return got
}

func TestCSVSelect(t *testing.T) {
	op := &CSVSelect{Sep: ',', Field: 1}
	out := vector.New(0)
	if err := op.Transform([]*vector.Vector{textVec(`id1,"hello, world",3`)}, out); err != nil {
		t.Fatal(err)
	}
	if out.Text != "hello, world" {
		t.Fatalf("got %q", out.Text)
	}
	if err := op.Transform([]*vector.Vector{textVec("only")}, out); err == nil {
		t.Fatal("field out of range must error")
	}
	if _, err := op.OutSchema([]*schema.Schema{schema.Text("line")}); err != nil {
		t.Fatal(err)
	}
	if _, err := op.OutSchema([]*schema.Schema{schema.Vector("v", 3, false)}); err == nil {
		t.Fatal("schema mismatch must error")
	}
	roundTrip(t, op)
}

func TestTokenizerOp(t *testing.T) {
	op := &Tokenizer{}
	out := vector.New(0)
	if err := op.Transform([]*vector.Vector{textVec("Hello World")}, out); err != nil {
		t.Fatal(err)
	}
	if out.Kind != vector.KindTokens || len(out.Tokens) != 2 || out.Tokens[0] != "hello" {
		t.Fatalf("got %v", out)
	}
	if err := op.Transform([]*vector.Vector{denseVec(1)}, out); err == nil {
		t.Fatal("wrong input kind must error")
	}
	s, err := op.OutSchema([]*schema.Schema{schema.Text("t")})
	if err != nil {
		t.Fatal(err)
	}
	if c, _ := s.Single(); c.Kind != schema.ColTokens {
		t.Fatal("output schema")
	}
	roundTrip(t, op)
}

func buildCharDict(tokens []string, minN, maxN int) *text.Dict {
	b := text.NewDictBuilder()
	for _, tok := range tokens {
		text.ObserveCharNgrams(b, []byte(tok), minN, maxN)
	}
	return b.Build(0)
}

func TestCharNgramOp(t *testing.T) {
	d := buildCharDict([]string{"nice", "product"}, 2, 3)
	op := &CharNgram{MinN: 2, MaxN: 3, Dict: d}
	out := vector.New(0)
	if err := op.Transform([]*vector.Vector{tokensVec("nice")}, out); err != nil {
		t.Fatal(err)
	}
	if out.Kind != vector.KindSparse || out.NNZ() == 0 || out.Dim != d.Size() {
		t.Fatalf("got %v", out)
	}
	// Repeated grams must be coalesced with counts.
	if err := op.Transform([]*vector.Vector{tokensVec("nini")}, out); err != nil {
		t.Fatal(err)
	}
	ni := d.Lookup("ni")
	if ni >= 0 && out.At(int(ni)) != 2 {
		t.Fatalf("count of 'ni' = %v, want 2", out.At(int(ni)))
	}
	got := roundTrip(t, op).(*CharNgram)
	if got.Dim() != op.Dim() || got.MinN != 2 || got.MaxN != 3 {
		t.Fatal("config lost in round trip")
	}
}

func TestWordNgramOp(t *testing.T) {
	b := text.NewDictBuilder()
	text.ObserveWordNgrams(b, []string{"very", "nice", "product"}, 2, nil)
	d := b.Build(0)
	op := &WordNgram{MaxN: 2, Dict: d}
	out := vector.New(0)
	if err := op.Transform([]*vector.Vector{tokensVec("very", "nice")}, out); err != nil {
		t.Fatal(err)
	}
	if out.At(int(d.Lookup("very nice"))) != 1 {
		t.Fatal("bigram missing")
	}
	roundTrip(t, op)
}

func TestHashNgramOp(t *testing.T) {
	op := &HashNgram{Bits: 8, Word: true}
	out := vector.New(0)
	if err := op.Transform([]*vector.Vector{tokensVec("a", "b", "a")}, out); err != nil {
		t.Fatal(err)
	}
	if out.Dim != 256 {
		t.Fatal("dim")
	}
	var total float32
	for _, v := range out.Val {
		total += v
	}
	if total != 3 {
		t.Fatalf("total mass %v, want 3", total)
	}
	roundTrip(t, op)
}

func TestConcatOp(t *testing.T) {
	op := &Concat{Dims: []int{2, 3}}
	if op.Dim() != 5 {
		t.Fatal("dim")
	}
	out := vector.New(0)
	// Dense + dense.
	if err := op.Transform([]*vector.Vector{denseVec(1, 2), denseVec(3, 4, 5)}, out); err != nil {
		t.Fatal(err)
	}
	if out.Kind != vector.KindDense || out.Dense[4] != 5 {
		t.Fatalf("dense concat: %v", out)
	}
	// Sparse + dense -> sparse with offset.
	sp := vector.New(0)
	sp.UseSparse(2)
	sp.AppendSparse(1, 9)
	if err := op.Transform([]*vector.Vector{sp, denseVec(0, 7, 0)}, out); err != nil {
		t.Fatal(err)
	}
	if out.Kind != vector.KindSparse || out.At(1) != 9 || out.At(3) != 7 || out.NNZ() != 2 {
		t.Fatalf("sparse concat: %v idx=%v val=%v", out, out.Idx, out.Val)
	}
	// Arity mismatch.
	if err := op.Transform([]*vector.Vector{denseVec(1, 2)}, out); err == nil {
		t.Fatal("arity mismatch must error")
	}
	// Schema.
	s, err := op.OutSchema([]*schema.Schema{schema.Vector("a", 2, true), schema.Vector("b", 3, false)})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := s.Single()
	if c.Dim != 5 || !c.Sparse {
		t.Fatalf("schema: %+v", c)
	}
	if _, err := op.OutSchema([]*schema.Schema{schema.Vector("a", 9, true), schema.Vector("b", 3, false)}); err == nil {
		t.Fatal("dim mismatch must error")
	}
	roundTrip(t, op)
}

func TestL2NormalizerOp(t *testing.T) {
	op := &L2Normalizer{}
	out := vector.New(0)
	if err := op.Transform([]*vector.Vector{denseVec(3, 4)}, out); err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(out.L2Norm())-1) > 1e-5 {
		t.Fatalf("norm %v", out.L2Norm())
	}
	// Zero vector must not NaN.
	if err := op.Transform([]*vector.Vector{denseVec(0, 0)}, out); err != nil {
		t.Fatal(err)
	}
	if out.Dense[0] != 0 {
		t.Fatal("zero vector")
	}
	if !op.Info().Breaker {
		t.Fatal("L2Normalizer must be a pipeline breaker")
	}
	roundTrip(t, op)
}

func TestMeanVarScalerOp(t *testing.T) {
	op := &MeanVarScaler{Mean: &Floats{V: []float32{1, 2}}, Std: &Floats{V: []float32{2, 0}}}
	out := vector.New(0)
	if err := op.Transform([]*vector.Vector{denseVec(3, 5)}, out); err != nil {
		t.Fatal(err)
	}
	if out.Dense[0] != 1 { // (3-1)/2
		t.Fatalf("scaled[0]=%v", out.Dense[0])
	}
	if out.Dense[1] != 3 { // std 0 -> treated as 1
		t.Fatalf("scaled[1]=%v", out.Dense[1])
	}
	got := roundTrip(t, op).(*MeanVarScaler)
	if got.Mean.V[1] != 2 || got.Std.V[0] != 2 {
		t.Fatal("params lost")
	}
}

func TestImputerOp(t *testing.T) {
	op := &Imputer{Fill: &Floats{V: []float32{5, 6}}}
	out := vector.New(0)
	nan := float32(math.NaN())
	if err := op.Transform([]*vector.Vector{denseVec(nan, 2)}, out); err != nil {
		t.Fatal(err)
	}
	if out.Dense[0] != 5 || out.Dense[1] != 2 {
		t.Fatalf("imputed: %v", out.Dense)
	}
	roundTrip(t, op)
}

func TestBucketizerOp(t *testing.T) {
	// 2 dims, 3 buckets -> 2 bounds per dim.
	op := &Bucketizer{NumBuckets: 3, Bounds: &Floats{V: []float32{0, 1, 10, 20}}}
	out := vector.New(0)
	if err := op.Transform([]*vector.Vector{denseVec(0.5, 25)}, out); err != nil {
		t.Fatal(err)
	}
	if out.Dense[0] != 1 || out.Dense[1] != 2 {
		t.Fatalf("buckets: %v", out.Dense)
	}
	if err := op.Transform([]*vector.Vector{denseVec(-1, 5)}, out); err != nil {
		t.Fatal(err)
	}
	if out.Dense[0] != 0 || out.Dense[1] != 0 {
		t.Fatalf("buckets: %v", out.Dense)
	}
	roundTrip(t, op)
}

func TestClipOp(t *testing.T) {
	op := &Clip{Lo: -1, Hi: 1}
	out := vector.New(0)
	if err := op.Transform([]*vector.Vector{denseVec(-5, 0.5, 7)}, out); err != nil {
		t.Fatal(err)
	}
	if out.Dense[0] != -1 || out.Dense[1] != 0.5 || out.Dense[2] != 1 {
		t.Fatalf("clip: %v", out.Dense)
	}
	roundTrip(t, op)
}

func TestFeatureSelectOp(t *testing.T) {
	op := &FeatureSelect{Indices: []int32{2, 0}}
	out := vector.New(0)
	if err := op.Transform([]*vector.Vector{denseVec(10, 20, 30)}, out); err != nil {
		t.Fatal(err)
	}
	if out.Dense[0] != 30 || out.Dense[1] != 10 {
		t.Fatalf("select: %v", out.Dense)
	}
	roundTrip(t, op)
}

func TestParseFloatsOp(t *testing.T) {
	op := &ParseFloats{Sep: ',', Dim: 3}
	out := vector.New(0)
	if err := op.Transform([]*vector.Vector{textVec("1.5, -2, 3e1")}, out); err != nil {
		t.Fatal(err)
	}
	if out.Dense[0] != 1.5 || out.Dense[1] != -2 || out.Dense[2] != 30 {
		t.Fatalf("parsed: %v", out.Dense)
	}
	if err := op.Transform([]*vector.Vector{textVec("1,2")}, out); err == nil {
		t.Fatal("missing fields must error")
	}
	if err := op.Transform([]*vector.Vector{textVec("a,b,c")}, out); err == nil {
		t.Fatal("garbage must error")
	}
	roundTrip(t, op)
}

func trainedForest(t *testing.T) *ml.Forest {
	t.Helper()
	xs := [][]float32{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 1}, {0, 4}}
	ys := []float32{0, 1, 1, 2, 4, 6, 5, 4}
	f, err := ml.TrainForest(xs, ys, ml.ForestOptions{NumTrees: 3, Tree: ml.TreeOptions{MaxDepth: 3, MinLeaf: 1}})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestMLOps(t *testing.T) {
	xs := [][]float32{{1, 0}, {0, 1}, {1, 1}, {2, 1}, {0, 0}, {3, 2}}

	pca, err := ml.TrainPCA(xs, ml.PCAOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	pop := &PCATransform{Model: pca}
	out := vector.New(0)
	if err := pop.Transform([]*vector.Vector{denseVec(1, 1)}, out); err != nil {
		t.Fatal(err)
	}
	if out.Dim != 1 {
		t.Fatal("pca out dim")
	}
	roundTrip(t, pop)

	km, err := ml.TrainKMeans(xs, ml.KMeansOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	kop := &KMeansTransform{Model: km}
	if err := kop.Transform([]*vector.Vector{denseVec(1, 1)}, out); err != nil {
		t.Fatal(err)
	}
	if out.Dim != 2 {
		t.Fatal("kmeans out dim")
	}
	roundTrip(t, kop)

	tf := NewTreeFeaturize(trainedForest(t))
	if err := tf.Transform([]*vector.Vector{denseVec(1, 1)}, out); err != nil {
		t.Fatal(err)
	}
	if out.Kind != vector.KindDense || out.Dim != tf.feat.Dim() {
		t.Fatalf("tree featurize: %v", out)
	}
	hot := 0
	for _, v := range out.Dense {
		if v == 1 {
			hot++
		}
	}
	if hot != 3 { // one active leaf per tree
		t.Fatalf("active leaves = %d, want 3", hot)
	}
	roundTrip(t, tf)

	fop := &ForestPredictor{Model: trainedForest(t)}
	if err := fop.Transform([]*vector.Vector{denseVec(3, 3)}, out); err != nil {
		t.Fatal(err)
	}
	if len(out.Dense) != 1 {
		t.Fatal("forest predictor out")
	}
	roundTrip(t, fop)

	lp := &LinearPredictor{Model: &ml.LinearModel{Kind: ml.LogisticRegression, Weights: []float32{1, -1}}}
	if err := lp.Transform([]*vector.Vector{denseVec(5, 0)}, out); err != nil {
		t.Fatal(err)
	}
	if out.Dense[0] < 0.99 {
		t.Fatalf("logistic score %v", out.Dense[0])
	}
	sp := vector.New(0)
	sp.UseSparse(2)
	sp.AppendSparse(1, 5)
	if err := lp.Transform([]*vector.Vector{sp}, out); err != nil {
		t.Fatal(err)
	}
	if out.Dense[0] > 0.01 {
		t.Fatalf("sparse logistic score %v", out.Dense[0])
	}
	if !lp.Info().Commutative || !lp.Info().Predictor {
		t.Fatal("LinearPredictor annotations")
	}
	roundTrip(t, lp)

	ys := []int{0, 1, 0, 1, 0, 1}
	mc, err := ml.TrainMultiClassForest(xs, ys, ml.MultiClassOptions{NumClasses: 2, Forest: ml.ForestOptions{NumTrees: 2}})
	if err != nil {
		t.Fatal(err)
	}
	mop := &MultiClassPredictor{Model: mc}
	if err := mop.Transform([]*vector.Vector{denseVec(1, 1)}, out); err != nil {
		t.Fatal(err)
	}
	if out.Dim != 2 {
		t.Fatal("multiclass out dim")
	}
	roundTrip(t, mop)

	cal := &Calibrator{A: 1, B: 0}
	if err := cal.Transform([]*vector.Vector{denseVec(0)}, out); err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(out.Dense[0])-0.5) > 1e-5 {
		t.Fatalf("calibrated %v", out.Dense[0])
	}
	roundTrip(t, cal)
}

func TestParamSharing(t *testing.T) {
	d := buildCharDict([]string{"shared"}, 2, 2)
	a := &CharNgram{MinN: 2, MaxN: 2, Dict: d}
	b := &CharNgram{MinN: 2, MaxN: 2, Dict: d}
	if Checksum(a) != Checksum(b) {
		t.Fatal("identical ops must share checksum")
	}
	// Same dict content, different op kind -> different checksum.
	w := &WordNgram{MaxN: 1, Dict: d}
	if Checksum(a) == Checksum(w) {
		t.Fatal("different op kinds must not collide")
	}
	// SetParams swaps the shared instance in.
	d2 := buildCharDict([]string{"shared"}, 2, 2)
	c := &CharNgram{MinN: 2, MaxN: 2, Dict: d2}
	if err := c.SetParams([]Param{d}); err != nil {
		t.Fatal(err)
	}
	if c.Dict != d {
		t.Fatal("SetParams did not install shared dict")
	}
	if err := c.SetParams([]Param{&Floats{}}); err == nil {
		t.Fatal("wrong param type must error")
	}
}

func TestSetParamsArityErrors(t *testing.T) {
	for _, op := range []Op{&Tokenizer{}, &Concat{}, &Clip{}, &CSVSelect{}, &HashNgram{}, &FeatureSelect{}, &ParseFloats{}, &L2Normalizer{}, &Calibrator{}} {
		if err := op.SetParams([]Param{&Floats{}}); err == nil {
			t.Fatalf("%s: extra param must error", op.Info().Kind)
		}
	}
	sc := &MeanVarScaler{}
	if err := sc.SetParams(nil); err == nil {
		t.Fatal("missing params must error")
	}
}

func TestReadUnknownKind(t *testing.T) {
	if _, err := Read("NoSuchOp", strings.NewReader("")); err == nil {
		t.Fatal("unknown kind must error")
	}
}

func TestKindsRegistered(t *testing.T) {
	kinds := Kinds()
	want := []string{
		"CSVSelect", "Tokenizer", "CharNgram", "WordNgram", "HashNgram",
		"Concat", "L2Normalizer", "MeanVarScaler", "Imputer", "Bucketizer",
		"Clip", "FeatureSelect", "ParseFloats", "PCATransform",
		"KMeansTransform", "TreeFeaturize", "LinearPredictor",
		"ForestPredictor", "MultiClassPredictor", "Calibrator",
	}
	have := map[string]bool{}
	for _, k := range kinds {
		have[k] = true
	}
	for _, k := range want {
		if !have[k] {
			t.Fatalf("operator %s not registered", k)
		}
	}
	if len(kinds) < 20 {
		t.Fatalf("expected ~two dozen operators, have %d", len(kinds))
	}
}

func TestMemBytes(t *testing.T) {
	d := buildCharDict([]string{"abcdef"}, 2, 3)
	op := &CharNgram{MinN: 2, MaxN: 3, Dict: d}
	if MemBytes(op) <= MemBytes(&Tokenizer{}) {
		t.Fatal("dict op must be bigger than empty op")
	}
}

func TestChecksumIncludesConfig(t *testing.T) {
	// Regression: parameter-less operators with different configurations
	// must have different checksums, or the runtime catalog would share
	// kernels across incompatible stages.
	a := &Concat{Dims: []int{4}}
	b := &Concat{Dims: []int{3, 5}}
	if Checksum(a) == Checksum(b) {
		t.Fatal("Concat checksums must depend on Dims")
	}
	c1 := &Clip{Lo: 0, Hi: 1}
	c2 := &Clip{Lo: 0, Hi: 2}
	if Checksum(c1) == Checksum(c2) {
		t.Fatal("Clip checksums must depend on bounds")
	}
	h1 := &HashNgram{Bits: 8, Word: true}
	h2 := &HashNgram{Bits: 9, Word: true}
	if Checksum(h1) == Checksum(h2) {
		t.Fatal("HashNgram checksums must depend on Bits")
	}
}

func TestFloatsParam(t *testing.T) {
	a := &Floats{V: []float32{1, 2, 3}}
	b := &Floats{V: []float32{1, 2, 3}}
	if a.Checksum() != b.Checksum() {
		t.Fatal("equal floats must share checksum")
	}
	c := &Floats{V: []float32{1, 2, 4}}
	if a.Checksum() == c.Checksum() {
		t.Fatal("different floats must differ")
	}
	if a.MemBytes() < 12 {
		t.Fatal("membytes")
	}
}
