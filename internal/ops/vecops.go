package ops

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"strconv"
	"strings"

	"pretzel/internal/schema"
	"pretzel/internal/vector"
)

// Floats is a shareable []float32 parameter (scaler offsets, imputation
// values, bucket boundaries, ...).
type Floats struct{ V []float32 }

// Checksum implements Param.
func (f *Floats) Checksum() uint64 {
	h := fnv.New64a()
	var b [4]byte
	for _, v := range f.V {
		binary.LittleEndian.PutUint32(b[:], math.Float32bits(v))
		h.Write(b[:])
	}
	return h.Sum64()
}

// MemBytes implements Param.
func (f *Floats) MemBytes() int { return 24 + 4*cap(f.V) }

// WriteContent implements Param: the canonical bytes the Object Store's
// content address is computed over.
func (f *Floats) WriteContent(w io.Writer) error { return writeFloats(w, f) }

func writeFloats(w io.Writer, f *Floats) error {
	var lb [4]byte
	binary.LittleEndian.PutUint32(lb[:], uint32(len(f.V)))
	if _, err := w.Write(lb[:]); err != nil {
		return err
	}
	buf := make([]byte, 4*len(f.V))
	for i, v := range f.V {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	_, err := w.Write(buf)
	return err
}

func readFloats(r io.Reader) (*Floats, error) {
	var lb [4]byte
	if _, err := io.ReadFull(r, lb[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(lb[:])
	if n > 1<<26 {
		return nil, fmt.Errorf("ops: implausible float count %d", n)
	}
	buf := make([]byte, 4*n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	f := &Floats{V: make([]float32, n)}
	for i := range f.V {
		f.V[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return f, nil
}

// takeFloats validates and extracts n *Floats params.
func takeFloats(kind string, ps []Param, n int) ([]*Floats, error) {
	if len(ps) != n {
		return nil, fmt.Errorf("ops: %s takes %d params, got %d", kind, n, len(ps))
	}
	out := make([]*Floats, n)
	for i, p := range ps {
		f, ok := p.(*Floats)
		if !ok {
			return nil, fmt.Errorf("ops: %s param %d must be *Floats, got %T", kind, i, p)
		}
		out[i] = f
	}
	return out, nil
}

// --- ParseFloats ---

// ParseFloats parses a separator-delimited numeric line into a dense
// vector (the structured-input front of AC pipelines).
type ParseFloats struct {
	Sep byte
	Dim int
}

// Info implements Op.
func (o *ParseFloats) Info() Info {
	return Info{Kind: "ParseFloats", NInputs: 1, MemoryBound: true}
}

// OutSchema implements Op.
func (o *ParseFloats) OutSchema(in []*schema.Schema) (*schema.Schema, error) {
	if len(in) != 1 {
		return nil, errInputs("ParseFloats", 1, len(in))
	}
	if err := in[0].CheckKind("ParseFloats", schema.ColText); err != nil {
		return nil, err
	}
	return schema.Vector("features", o.Dim, false), nil
}

// Transform implements Op.
func (o *ParseFloats) Transform(in []*vector.Vector, out *vector.Vector) error {
	if len(in) != 1 || in[0].Kind != vector.KindText {
		return fmt.Errorf("ops: ParseFloats needs one text input")
	}
	d := out.UseDense(o.Dim)
	line := in[0].Text
	i := 0
	for f := 0; f < o.Dim; f++ {
		j := i
		for j < len(line) && line[j] != o.Sep {
			j++
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(line[i:j]), 32)
		if err != nil {
			return fmt.Errorf("ops: ParseFloats field %d: %w", f, err)
		}
		d[f] = float32(v)
		i = j + 1
		if j >= len(line) && f < o.Dim-1 {
			return fmt.Errorf("ops: ParseFloats needs %d fields, line has %d", o.Dim, f+1)
		}
	}
	return nil
}

// Params implements Op.
func (o *ParseFloats) Params() []Param { return nil }

// SetParams implements Op.
func (o *ParseFloats) SetParams(ps []Param) error {
	if len(ps) != 0 {
		return fmt.Errorf("ops: ParseFloats takes no params")
	}
	return nil
}

// WriteParams implements Op.
func (o *ParseFloats) WriteParams(w io.Writer) error { return writeJSONFrame(w, o) }

func init() {
	register("ParseFloats", func(r io.Reader) (Op, error) {
		o := &ParseFloats{}
		return o, readJSONFrame(r, o)
	})
}

// --- Concat ---

// Concat concatenates its input vectors into one. It is the canonical
// pipeline breaker: downstream operators need the full feature vector
// (§4.1.2 StageGraphBuilderStep).
type Concat struct {
	Dims []int // input dimensionalities (fixed at training time)
}

// Info implements Op.
func (o *Concat) Info() Info {
	return Info{Kind: "Concat", NInputs: len(o.Dims), Breaker: true, MemoryBound: true}
}

// Dim returns the output dimensionality.
func (o *Concat) Dim() int {
	n := 0
	for _, d := range o.Dims {
		n += d
	}
	return n
}

// OutSchema implements Op.
func (o *Concat) OutSchema(in []*schema.Schema) (*schema.Schema, error) {
	if len(in) != len(o.Dims) {
		return nil, errInputs("Concat", len(o.Dims), len(in))
	}
	sparse := false
	for i, s := range in {
		c, err := s.Single()
		if err != nil {
			return nil, err
		}
		if c.Kind != schema.ColVector {
			return nil, &schema.MismatchError{Op: "Concat", Want: schema.ColVector, Got: c.Kind}
		}
		if c.Dim != o.Dims[i] {
			return nil, fmt.Errorf("ops: Concat input %d dim %d != trained dim %d", i, c.Dim, o.Dims[i])
		}
		sparse = sparse || c.Sparse
	}
	return schema.Vector("features", o.Dim(), sparse), nil
}

// Transform implements Op.
func (o *Concat) Transform(in []*vector.Vector, out *vector.Vector) error {
	if len(in) != len(o.Dims) {
		return errInputs("Concat", len(o.Dims), len(in))
	}
	// If any input is sparse, produce sparse output; else dense.
	anySparse := false
	for _, v := range in {
		if v.Kind == vector.KindSparse {
			anySparse = true
			break
		}
	}
	if anySparse {
		out.UseSparse(o.Dim())
		off := int32(0)
		for i, v := range in {
			switch v.Kind {
			case vector.KindSparse:
				out.AppendSparseShifted(off, v.Idx, v.Val)
			case vector.KindDense:
				for k, x := range v.Dense {
					if x != 0 {
						out.AppendSparse(off+int32(k), x)
					}
				}
			default:
				return fmt.Errorf("ops: Concat input %d is %s, want vector", i, v.Kind)
			}
			off += int32(o.Dims[i])
		}
		return nil
	}
	d := out.UseDense(o.Dim())
	off := 0
	for i, v := range in {
		if v.Kind != vector.KindDense {
			return fmt.Errorf("ops: Concat input %d is %s, want vector", i, v.Kind)
		}
		copy(d[off:off+o.Dims[i]], v.Dense)
		off += o.Dims[i]
	}
	return nil
}

// Params implements Op.
func (o *Concat) Params() []Param { return nil }

// SetParams implements Op.
func (o *Concat) SetParams(ps []Param) error {
	if len(ps) != 0 {
		return fmt.Errorf("ops: Concat takes no params")
	}
	return nil
}

// WriteParams implements Op.
func (o *Concat) WriteParams(w io.Writer) error { return writeJSONFrame(w, o) }

func init() {
	register("Concat", func(r io.Reader) (Op, error) {
		o := &Concat{}
		return o, readJSONFrame(r, o)
	})
}

// --- L2Normalizer ---

// L2Normalizer scales a vector to unit Euclidean norm. It requires the
// complete vector (an n-to-1 aggregation over coordinates), so it is a
// pipeline breaker (§4.1.2: "a Normalizer requires the L2 norm of the
// complete vector").
type L2Normalizer struct{}

// Info implements Op.
func (o *L2Normalizer) Info() Info {
	return Info{Kind: "L2Normalizer", NInputs: 1, Breaker: true, MemoryBound: true}
}

// OutSchema implements Op.
func (o *L2Normalizer) OutSchema(in []*schema.Schema) (*schema.Schema, error) {
	if len(in) != 1 {
		return nil, errInputs("L2Normalizer", 1, len(in))
	}
	c, err := in[0].Single()
	if err != nil {
		return nil, err
	}
	if c.Kind != schema.ColVector {
		return nil, &schema.MismatchError{Op: "L2Normalizer", Want: schema.ColVector, Got: c.Kind}
	}
	return in[0], nil
}

// Transform implements Op.
func (o *L2Normalizer) Transform(in []*vector.Vector, out *vector.Vector) error {
	if len(in) != 1 || (in[0].Kind != vector.KindDense && in[0].Kind != vector.KindSparse) {
		return fmt.Errorf("ops: L2Normalizer needs one vector input")
	}
	out.CopyFrom(in[0])
	n := out.L2Norm()
	if n > 0 {
		out.Scale(1 / n)
	}
	return nil
}

// Params implements Op.
func (o *L2Normalizer) Params() []Param { return nil }

// SetParams implements Op.
func (o *L2Normalizer) SetParams(ps []Param) error {
	if len(ps) != 0 {
		return fmt.Errorf("ops: L2Normalizer takes no params")
	}
	return nil
}

// WriteParams implements Op.
func (o *L2Normalizer) WriteParams(w io.Writer) error { return writeJSONFrame(w, o) }

func init() {
	register("L2Normalizer", func(r io.Reader) (Op, error) {
		o := &L2Normalizer{}
		return o, readJSONFrame(r, o)
	})
}

// --- MeanVarScaler ---

// MeanVarScaler standardizes each coordinate: (x - mean) / std, with
// means/stds estimated at training time.
type MeanVarScaler struct {
	Mean *Floats `json:"-"`
	Std  *Floats `json:"-"`
}

// Info implements Op.
func (o *MeanVarScaler) Info() Info {
	return Info{Kind: "MeanVarScaler", NInputs: 1, MemoryBound: true}
}

// OutSchema implements Op.
func (o *MeanVarScaler) OutSchema(in []*schema.Schema) (*schema.Schema, error) {
	if len(in) != 1 {
		return nil, errInputs("MeanVarScaler", 1, len(in))
	}
	c, err := in[0].Single()
	if err != nil {
		return nil, err
	}
	if c.Kind != schema.ColVector {
		return nil, &schema.MismatchError{Op: "MeanVarScaler", Want: schema.ColVector, Got: c.Kind}
	}
	if c.Dim != 0 && c.Dim != len(o.Mean.V) {
		return nil, fmt.Errorf("ops: MeanVarScaler trained on dim %d, input dim %d", len(o.Mean.V), c.Dim)
	}
	return in[0], nil
}

// Transform implements Op.
func (o *MeanVarScaler) Transform(in []*vector.Vector, out *vector.Vector) error {
	if len(in) != 1 || in[0].Kind != vector.KindDense {
		return fmt.Errorf("ops: MeanVarScaler needs one dense input")
	}
	x := in[0].Dense
	d := out.UseDense(len(x))[:len(x)]
	// Reslicing the parameter vectors to the input length eliminates the
	// per-element bounds checks (and panics on a dim mismatch exactly
	// where the unsliced indexing would have).
	mean, std := o.Mean.V[:len(x)], o.Std.V[:len(x)]
	for i, xv := range x {
		s := std[i]
		if s == 0 {
			s = 1
		}
		d[i] = (xv - mean[i]) / s
	}
	return nil
}

// Params implements Op.
func (o *MeanVarScaler) Params() []Param { return []Param{o.Mean, o.Std} }

// SetParams implements Op.
func (o *MeanVarScaler) SetParams(ps []Param) error {
	fs, err := takeFloats("MeanVarScaler", ps, 2)
	if err != nil {
		return err
	}
	o.Mean, o.Std = fs[0], fs[1]
	return nil
}

// WriteParams implements Op.
func (o *MeanVarScaler) WriteParams(w io.Writer) error {
	if err := writeJSONFrame(w, o); err != nil {
		return err
	}
	if err := writeFloats(w, o.Mean); err != nil {
		return err
	}
	return writeFloats(w, o.Std)
}

func init() {
	register("MeanVarScaler", func(r io.Reader) (Op, error) {
		o := &MeanVarScaler{}
		if err := readJSONFrame(r, o); err != nil {
			return nil, err
		}
		var err error
		if o.Mean, err = readFloats(r); err != nil {
			return nil, err
		}
		if o.Std, err = readFloats(r); err != nil {
			return nil, err
		}
		return o, nil
	})
}

// --- Imputer ---

// Imputer replaces NaN coordinates with per-coordinate fill values
// (typically training means).
type Imputer struct {
	Fill *Floats `json:"-"`
}

// Info implements Op.
func (o *Imputer) Info() Info {
	return Info{Kind: "Imputer", NInputs: 1, MemoryBound: true}
}

// OutSchema implements Op.
func (o *Imputer) OutSchema(in []*schema.Schema) (*schema.Schema, error) {
	if len(in) != 1 {
		return nil, errInputs("Imputer", 1, len(in))
	}
	c, err := in[0].Single()
	if err != nil {
		return nil, err
	}
	if c.Kind != schema.ColVector {
		return nil, &schema.MismatchError{Op: "Imputer", Want: schema.ColVector, Got: c.Kind}
	}
	return in[0], nil
}

// Transform implements Op.
func (o *Imputer) Transform(in []*vector.Vector, out *vector.Vector) error {
	if len(in) != 1 || in[0].Kind != vector.KindDense {
		return fmt.Errorf("ops: Imputer needs one dense input")
	}
	x := in[0].Dense
	d := out.UseDense(len(x))
	fill := o.Fill.V
	for i := range x {
		if math.IsNaN(float64(x[i])) && i < len(fill) {
			d[i] = fill[i]
		} else {
			d[i] = x[i]
		}
	}
	return nil
}

// Params implements Op.
func (o *Imputer) Params() []Param { return []Param{o.Fill} }

// SetParams implements Op.
func (o *Imputer) SetParams(ps []Param) error {
	fs, err := takeFloats("Imputer", ps, 1)
	if err != nil {
		return err
	}
	o.Fill = fs[0]
	return nil
}

// WriteParams implements Op.
func (o *Imputer) WriteParams(w io.Writer) error {
	if err := writeJSONFrame(w, o); err != nil {
		return err
	}
	return writeFloats(w, o.Fill)
}

func init() {
	register("Imputer", func(r io.Reader) (Op, error) {
		o := &Imputer{}
		if err := readJSONFrame(r, o); err != nil {
			return nil, err
		}
		var err error
		if o.Fill, err = readFloats(r); err != nil {
			return nil, err
		}
		return o, nil
	})
}

// --- Bucketizer ---

// Bucketizer maps each coordinate to the index of its quantile bucket
// (boundaries estimated at training time), a common tree-model front.
type Bucketizer struct {
	NumBuckets int
	Bounds     *Floats `json:"-"` // Dim*(NumBuckets-1) boundaries, row-major
}

// Info implements Op.
func (o *Bucketizer) Info() Info {
	return Info{Kind: "Bucketizer", NInputs: 1, MemoryBound: true}
}

// OutSchema implements Op.
func (o *Bucketizer) OutSchema(in []*schema.Schema) (*schema.Schema, error) {
	if len(in) != 1 {
		return nil, errInputs("Bucketizer", 1, len(in))
	}
	c, err := in[0].Single()
	if err != nil {
		return nil, err
	}
	if c.Kind != schema.ColVector {
		return nil, &schema.MismatchError{Op: "Bucketizer", Want: schema.ColVector, Got: c.Kind}
	}
	return in[0], nil
}

// Transform implements Op.
func (o *Bucketizer) Transform(in []*vector.Vector, out *vector.Vector) error {
	if len(in) != 1 || in[0].Kind != vector.KindDense {
		return fmt.Errorf("ops: Bucketizer needs one dense input")
	}
	x := in[0].Dense
	nb := o.NumBuckets - 1
	d := out.UseDense(len(x))
	for i := range x {
		bounds := o.Bounds.V[i*nb : (i+1)*nb]
		b := 0
		for b < nb && x[i] > bounds[b] {
			b++
		}
		d[i] = float32(b)
	}
	return nil
}

// Params implements Op.
func (o *Bucketizer) Params() []Param { return []Param{o.Bounds} }

// SetParams implements Op.
func (o *Bucketizer) SetParams(ps []Param) error {
	fs, err := takeFloats("Bucketizer", ps, 1)
	if err != nil {
		return err
	}
	o.Bounds = fs[0]
	return nil
}

// WriteParams implements Op.
func (o *Bucketizer) WriteParams(w io.Writer) error {
	if err := writeJSONFrame(w, o); err != nil {
		return err
	}
	return writeFloats(w, o.Bounds)
}

func init() {
	register("Bucketizer", func(r io.Reader) (Op, error) {
		o := &Bucketizer{}
		if err := readJSONFrame(r, o); err != nil {
			return nil, err
		}
		var err error
		if o.Bounds, err = readFloats(r); err != nil {
			return nil, err
		}
		return o, nil
	})
}

// --- Clip ---

// Clip clamps every coordinate into [Lo, Hi].
type Clip struct {
	Lo, Hi float32
}

// Info implements Op.
func (o *Clip) Info() Info {
	return Info{Kind: "Clip", NInputs: 1, MemoryBound: true}
}

// OutSchema implements Op.
func (o *Clip) OutSchema(in []*schema.Schema) (*schema.Schema, error) {
	if len(in) != 1 {
		return nil, errInputs("Clip", 1, len(in))
	}
	c, err := in[0].Single()
	if err != nil {
		return nil, err
	}
	if c.Kind != schema.ColVector {
		return nil, &schema.MismatchError{Op: "Clip", Want: schema.ColVector, Got: c.Kind}
	}
	return in[0], nil
}

// Transform implements Op.
func (o *Clip) Transform(in []*vector.Vector, out *vector.Vector) error {
	if len(in) != 1 || in[0].Kind != vector.KindDense {
		return fmt.Errorf("ops: Clip needs one dense input")
	}
	x := in[0].Dense
	d := out.UseDense(len(x))[:len(x)]
	lo, hi := o.Lo, o.Hi
	for i, v := range x {
		if v < lo {
			v = lo
		} else if v > hi {
			v = hi
		}
		d[i] = v
	}
	return nil
}

// Params implements Op.
func (o *Clip) Params() []Param { return nil }

// SetParams implements Op.
func (o *Clip) SetParams(ps []Param) error {
	if len(ps) != 0 {
		return fmt.Errorf("ops: Clip takes no params")
	}
	return nil
}

// WriteParams implements Op.
func (o *Clip) WriteParams(w io.Writer) error { return writeJSONFrame(w, o) }

func init() {
	register("Clip", func(r io.Reader) (Op, error) {
		o := &Clip{}
		return o, readJSONFrame(r, o)
	})
}

// --- FeatureSelect ---

// FeatureSelect projects a dense vector onto a fixed index subset.
type FeatureSelect struct {
	Indices []int32
}

// Info implements Op.
func (o *FeatureSelect) Info() Info {
	return Info{Kind: "FeatureSelect", NInputs: 1, MemoryBound: true}
}

// OutSchema implements Op.
func (o *FeatureSelect) OutSchema(in []*schema.Schema) (*schema.Schema, error) {
	if len(in) != 1 {
		return nil, errInputs("FeatureSelect", 1, len(in))
	}
	c, err := in[0].Single()
	if err != nil {
		return nil, err
	}
	if c.Kind != schema.ColVector {
		return nil, &schema.MismatchError{Op: "FeatureSelect", Want: schema.ColVector, Got: c.Kind}
	}
	return schema.Vector("selected", len(o.Indices), false), nil
}

// Transform implements Op.
func (o *FeatureSelect) Transform(in []*vector.Vector, out *vector.Vector) error {
	if len(in) != 1 || in[0].Kind != vector.KindDense {
		return fmt.Errorf("ops: FeatureSelect needs one dense input")
	}
	x := in[0].Dense
	d := out.UseDense(len(o.Indices))
	for i, ix := range o.Indices {
		if int(ix) < len(x) {
			d[i] = x[ix]
		}
	}
	return nil
}

// Params implements Op.
func (o *FeatureSelect) Params() []Param { return nil }

// SetParams implements Op.
func (o *FeatureSelect) SetParams(ps []Param) error {
	if len(ps) != 0 {
		return fmt.Errorf("ops: FeatureSelect takes no params")
	}
	return nil
}

// WriteParams implements Op.
func (o *FeatureSelect) WriteParams(w io.Writer) error { return writeJSONFrame(w, o) }

func init() {
	register("FeatureSelect", func(r io.Reader) (Op, error) {
		o := &FeatureSelect{}
		return o, readJSONFrame(r, o)
	})
}
