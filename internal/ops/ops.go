// Package ops implements the ML.Net-style logical operators that trained
// pipelines are composed of. PRETZEL supports "about two dozen" operators
// (§5); this package provides the equivalent set: text featurizers
// (tokenizer, dictionary and hashing n-grams), vector transformations
// (concat, normalizers, scalers, imputer, one-hot, bucketizer, clip,
// feature selection), dimensionality reduction and clustering transforms
// (PCA, KMeans, tree featurizer) and predictors (linear models, trees,
// forests, multi-class forests, calibrators).
//
// Every operator carries the annotations the Oven optimizer matches on
// (§4.1.2: "transformation classes are annotated (e.g., 1-to-1, 1-to-n,
// memory-bound, compute-bound, commutative and associative) to ease the
// optimization process").
package ops

import (
	"encoding/json"
	"fmt"
	"io"

	"pretzel/internal/schema"
	"pretzel/internal/vector"
)

// Param is a shareable parameter object. The Object Store identifies
// parameter objects by a collision-safe content address: the 64-bit
// Checksum is the fast-path fingerprint, and WriteContent provides the
// canonical serialized bytes the store's SHA-256 digest — the actual
// identity — is computed over. Two parameters are interchangeable iff
// their content bytes are equal; a Checksum collision alone must never
// intern one model onto another model's weights.
type Param interface {
	Checksum() uint64
	MemBytes() int
	// WriteContent writes the canonical serialized form of the
	// parameter. Implementations must be deterministic (equal content
	// ⇒ equal bytes, regardless of construction order).
	WriteContent(w io.Writer) error
}

// Info carries the optimizer-facing annotations of an operator class.
type Info struct {
	Kind string // operator class name, e.g. "CharNgram"

	// Arity/shape annotations.
	NInputs int  // number of inputs (1 for most; >1 for Concat)
	Breaker bool // pipeline breaker: needs its input fully materialized

	// Cost-model annotations driving stage fusion.
	MemoryBound  bool // pipelined with neighbours in one pass (fusable)
	ComputeBound bool // isolated for blocked/vectorized execution

	// Algebraic annotations.
	Commutative bool // model can be pushed through Concat (dot product)
	Predictor   bool // final scorer of a pipeline
}

// Op is one trained pipeline operator.
type Op interface {
	// Info returns the operator class annotations.
	Info() Info
	// OutSchema computes the output schema from the input schemas,
	// validating kinds (the optimizer's schema-propagation rules call it).
	OutSchema(in []*schema.Schema) (*schema.Schema, error)
	// Transform computes one output record from the input records. out is
	// a caller-provided buffer vector.
	Transform(in []*vector.Vector, out *vector.Vector) error
	// Params returns the operator's shareable parameter objects (possibly
	// empty).
	Params() []Param
	// SetParams replaces the parameter objects with shared instances of
	// the same dynamic types, in the order returned by Params.
	SetParams(ps []Param) error
	// WriteParams serializes the operator configuration and parameters.
	WriteParams(w io.Writer) error
}

// MemBytes sums the parameter footprint of an operator.
func MemBytes(op Op) int {
	n := 64 // struct overhead
	for _, p := range op.Params() {
		n += p.MemBytes()
	}
	return n
}

// Checksum combines the operator kind, its configuration (the exported
// struct fields; parameter objects carry `json:"-"` tags) and the
// parameter checksums into a stage-identity hash. Configuration must be
// included: two Concat operators with different Dims are different
// stages even though neither has parameters.
func Checksum(op Op) uint64 {
	acc := hashString(op.Info().Kind)
	if b, err := json.Marshal(op); err == nil {
		acc = acc*0x100000001b3 ^ hashBytes(b)
	}
	for _, p := range op.Params() {
		acc = acc*0x100000001b3 ^ p.Checksum()
	}
	return acc
}

func hashBytes(b []byte) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for _, c := range b {
		h = (h ^ uint64(c)) * 0x100000001b3
	}
	return h
}

func hashString(s string) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 0x100000001b3
	}
	return h
}

// --- serialization registry ---

// reader deserializes one operator kind.
type reader func(r io.Reader) (Op, error)

var registry = map[string]reader{}

// register installs a deserializer for kind; called from init functions.
func register(kind string, fn reader) { registry[kind] = fn }

// Read deserializes an operator of the given kind.
func Read(kind string, r io.Reader) (Op, error) {
	fn, ok := registry[kind]
	if !ok {
		return nil, fmt.Errorf("ops: unknown operator kind %q", kind)
	}
	op, err := fn(r)
	if err != nil {
		return nil, fmt.Errorf("ops: reading %s: %w", kind, err)
	}
	return op, nil
}

// Kinds returns the registered operator kinds (for documentation/tests).
func Kinds() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	return out
}

// errInputs builds the standard wrong-arity error.
func errInputs(kind string, want, got int) error {
	return fmt.Errorf("ops: %s expects %d input(s), got %d", kind, want, got)
}
