package vector

import (
	"strings"
	"sync"
	"testing"
)

func TestPoolShardsRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {9, 16}, {64, 64}, {100, 64},
	} {
		if got := NewPoolShards(tc.in).NumShards(); got != tc.want {
			t.Fatalf("NewPoolShards(%d).NumShards() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestPoolGetNPutN(t *testing.T) {
	p := NewPoolShards(4)
	hint := p.ShardHint()
	caps := []int{100, 30, 500}
	row := make([]*Vector, len(caps))
	p.GetN(hint, row, caps)
	for i, v := range row {
		if v == nil || cap(v.Dense) < caps[i] {
			t.Fatalf("slot %d: got %v (cap %d, want >= %d)", i, v, cap(v.Dense), caps[i])
		}
	}
	first := append([]*Vector(nil), row...)
	p.PutN(hint, row)
	// Same shard: the batch must be served entirely from the free lists.
	row2 := make([]*Vector, len(caps))
	p.GetN(hint, row2, caps)
	for i, v := range row2 {
		found := false
		for _, f := range first {
			if v == f {
				found = true
			}
		}
		if !found {
			t.Fatalf("slot %d not reused after PutN/GetN on one shard", i)
		}
	}
	st := p.Stats()
	if st.Gets != 6 || st.Puts != 3 || st.Hits != 3 || st.Allocs != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPoolGetNUniform(t *testing.T) {
	p := NewPool()
	row := make([]*Vector, 8)
	p.GetNUniform(0, row, 128)
	for i, v := range row {
		if v == nil || cap(v.Dense) < 128 {
			t.Fatalf("slot %d too small", i)
		}
	}
	p.PutN(0, row)
	row2 := make([]*Vector, 8)
	p.GetNUniform(0, row2, 100)
	st := p.Stats()
	if st.Hits != 8 {
		t.Fatalf("uniform re-get should hit 8 times: %+v", st)
	}
}

func TestPoolPutNSkipsNilAndOversized(t *testing.T) {
	p := NewPool()
	big := New(maxVecCap * 2)
	p.PutN(0, []*Vector{nil, big, nil})
	st := p.Stats()
	if st.Puts != 1 {
		t.Fatalf("only the non-nil vector counts as a put: %+v", st)
	}
	if got := p.Get(maxVecCap * 2); got == big {
		t.Fatal("oversized vector must not be pooled")
	}
}

func TestPoolDisabledBatch(t *testing.T) {
	p := NewDisabledPool()
	row := make([]*Vector, 4)
	p.GetN(0, row, []int{10, 10, 10, 10})
	p.PutN(0, row)
	row2 := make([]*Vector, 4)
	p.GetNUniform(0, row2, 10)
	for _, v := range row2 {
		for _, old := range row {
			if v == old {
				t.Fatal("disabled pool must never reuse")
			}
		}
	}
	st := p.Stats()
	if st.Hits != 0 || st.Allocs != 8 || st.Gets != 8 || st.Puts != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPoolShardedConcurrent(t *testing.T) {
	p := NewPoolShards(8)
	var wg sync.WaitGroup
	const goroutines, iters, batch = 16, 500, 5
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			hint := p.ShardHint()
			caps := []int{64, 128, 256, 100, 700}
			row := make([]*Vector, batch)
			for i := 0; i < iters; i++ {
				p.GetN(hint, row, caps)
				for _, v := range row {
					v.UseDense(32)[0] = 1
				}
				p.PutN(hint, row)
			}
		}()
	}
	wg.Wait()
	st := p.Stats()
	want := uint64(goroutines * iters * batch)
	if st.Gets != want || st.Puts != want {
		t.Fatalf("gets/puts = %d/%d, want %d", st.Gets, st.Puts, want)
	}
	if st.Hits+st.Allocs != st.Gets {
		t.Fatalf("gets (%d) != hits (%d) + allocs (%d)", st.Gets, st.Hits, st.Allocs)
	}
}

func TestFloorClassFor(t *testing.T) {
	for _, tc := range []struct{ cap, want int }{
		{0, 0}, {1, 0}, {64, 0}, {100, 0}, {127, 0}, {128, 1}, {255, 1}, {256, 2},
		{maxVecCap, nClasses - 1},
	} {
		if got := floorClassFor(tc.cap); got != tc.want {
			t.Fatalf("floorClassFor(%d) = %d, want %d", tc.cap, got, tc.want)
		}
	}
}

// benchmarkPoolParallel hammers batched get/put from all procs; run
// with -cpu 1,2,4,8 to see the global-mutex pool flatline while the
// sharded pool scales (§4.2.1).
func benchmarkPoolParallel(b *testing.B, p *Pool) {
	caps := []int{64, 256, 1024, 100}
	b.RunParallel(func(pb *testing.PB) {
		hint := p.ShardHint()
		row := make([]*Vector, len(caps))
		for pb.Next() {
			p.GetN(hint, row, caps)
			row[0].UseDense(32)[0] = 1
			p.PutN(hint, row)
		}
	})
}

func BenchmarkPoolParallelGlobal(b *testing.B)  { benchmarkPoolParallel(b, NewPoolShards(1)) }
func BenchmarkPoolParallelSharded(b *testing.B) { benchmarkPoolParallel(b, NewPoolShards(64)) }

func TestStringArenaTokens(t *testing.T) {
	v := New(0)
	v.AppendTokenBytes([]byte("alpha"))
	v.AppendTokenBytes([]byte("beta"))
	s := v.String()
	if !strings.Contains(s, "tokens[2]") || !strings.Contains(s, "alpha") || !strings.Contains(s, "beta") {
		t.Fatalf("String() must report arena-backed tokens: %q", s)
	}
	v2 := New(0)
	v2.SetTokens([]string{"a", "b", "c", "d"})
	if s2 := v2.String(); !strings.Contains(s2, "tokens[4]") || !strings.Contains(s2, "a,b,c") {
		t.Fatalf("String() slice form broken: %q", s2)
	}
}
