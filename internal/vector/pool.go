package vector

import "sync"

// Pool is a size-classed free list of vectors. The runtime allocates one
// Pool per Executor to improve locality (§4.2.1): an executor acquires the
// vectors for a whole pipeline execution up front (lazily, when the first
// stage of the pipeline is scheduled) and returns them when the pipeline
// finishes, so the prediction path itself never allocates.
//
// Pool is safe for concurrent use: vectors are requested per pipeline and
// a pipeline's later stages may run on a different executor than the one
// owning the pool the vectors came from.
type Pool struct {
	mu      sync.Mutex
	classes [nClasses][]*Vector

	// Stats (guarded by mu). Used by the vector-pooling ablation.
	gets   uint64
	hits   uint64
	allocs uint64
	puts   uint64

	disabled bool // when true, Get always allocates (ablation mode)
}

// nClasses size classes: capacities 1<<6 .. 1<<(6+nClasses-1).
const (
	nClasses  = 16
	minShift  = 6
	maxVecCap = 1 << (minShift + nClasses - 1)
)

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// NewDisabledPool returns a pool that never reuses vectors. It implements
// the "vector pooling off" ablation of §5.2.1.
func NewDisabledPool() *Pool { return &Pool{disabled: true} }

// classFor returns the size class whose vectors have dense capacity >= n,
// or -1 when n exceeds the largest class.
func classFor(n int) int {
	c := 0
	size := 1 << minShift
	for size < n {
		size <<= 1
		c++
	}
	if c >= nClasses {
		return -1
	}
	return c
}

// Get returns a vector whose dense buffer has capacity at least capHint.
// The vector is reset and ready for use.
func (p *Pool) Get(capHint int) *Vector {
	if capHint < 0 {
		capHint = 0
	}
	p.mu.Lock()
	p.gets++
	if p.disabled {
		p.allocs++
		p.mu.Unlock()
		return New(capHint)
	}
	c := classFor(capHint)
	if c >= 0 {
		// Search upward from the requested class: a bigger vector works.
		for cc := c; cc < nClasses; cc++ {
			if n := len(p.classes[cc]); n > 0 {
				v := p.classes[cc][n-1]
				p.classes[cc][n-1] = nil
				p.classes[cc] = p.classes[cc][:n-1]
				p.hits++
				p.mu.Unlock()
				v.Reset()
				return v
			}
		}
	}
	p.allocs++
	p.mu.Unlock()
	if c >= 0 {
		capHint = 1 << (minShift + c)
	}
	return New(capHint)
}

// Put returns a vector to the pool. Oversized or disabled-pool vectors are
// dropped for the GC.
func (p *Pool) Put(v *Vector) {
	if v == nil {
		return
	}
	c := classFor(cap(v.Dense))
	p.mu.Lock()
	defer p.mu.Unlock()
	p.puts++
	if p.disabled || c < 0 {
		return
	}
	// Classes store vectors with capacity >= class size; cap(v.Dense) may be
	// less than the class size if the vector was allocated raw, so round
	// down to the class it can actually serve.
	for c > 0 && cap(v.Dense) < 1<<(minShift+c) {
		c--
	}
	if len(p.classes[c]) < 1024 {
		v.Reset()
		p.classes[c] = append(p.classes[c], v)
	}
}

// PoolStats is a snapshot of pool counters.
type PoolStats struct {
	Gets, Hits, Allocs, Puts uint64
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{Gets: p.gets, Hits: p.hits, Allocs: p.allocs, Puts: p.puts}
}

// Preallocate fills the pool with n vectors of capacity capHint each, so
// that steady-state serving never allocates (§4.2.1 "overheads for
// instantiating memory ... are paid upfront at initialization time").
func (p *Pool) Preallocate(n, capHint int) {
	c := classFor(capHint)
	if c < 0 {
		return
	}
	vs := make([]*Vector, 0, n)
	for i := 0; i < n; i++ {
		vs = append(vs, New(1<<(minShift+c)))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, v := range vs {
		if len(p.classes[c]) < 1024 {
			p.classes[c] = append(p.classes[c], v)
		}
	}
}
