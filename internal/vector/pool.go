package vector

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Pool is a sharded, size-classed free list of vectors (§4.2.1: the
// prediction path never allocates; memory instantiation costs are paid
// upfront). Each shard owns its own mutex, free lists and statistics, so
// goroutines on different cores do not contend on one global lock. Shard
// selection is a cheap round-robin by default; long-lived owners (an
// executor, a pooled execution context) pin themselves to one shard with
// ShardHint for locality.
//
// The batch API (GetN / PutN) acquires or releases all the vectors of a
// pipeline execution in ONE shard visit — one atomic op plus one short
// critical section per prediction instead of one lock round-trip per
// intermediate vector.
//
// Pool is safe for concurrent use: vectors are requested per pipeline and
// a pipeline's later stages may run on a different executor than the one
// owning the pool the vectors came from.
type Pool struct {
	shards   []poolShard
	mask     uint32
	cursor   atomic.Uint32
	disabled bool // when true, Get always allocates (ablation mode)
}

// nClasses size classes: capacities 1<<6 .. 1<<(6+nClasses-1).
const (
	nClasses   = 16
	minShift   = 6
	maxVecCap  = 1 << (minShift + nClasses - 1)
	maxPerList = 1024 // per-shard, per-class retention cap
)

// poolShard is one independently locked free list with its own counters.
// The trailing pad keeps adjacent shards off one cache line, so per-shard
// atomics and locks do not false-share.
type poolShard struct {
	mu      sync.Mutex
	classes [nClasses][]*Vector

	// Stats are atomics so Stats() aggregates without taking locks and
	// the ablation accounting never serializes the hot path.
	gets   atomic.Uint64
	hits   atomic.Uint64
	allocs atomic.Uint64
	puts   atomic.Uint64

	_ [64]byte
}

// NewPool returns an empty single-shard pool (the uncontended
// configuration: per-executor pools and tests).
func NewPool() *Pool { return NewPoolShards(1) }

// NewPoolShards returns an empty pool with n shards (rounded up to a
// power of two). Use one shard per core for pools shared across request
// goroutines.
func NewPoolShards(n int) *Pool {
	if n < 1 {
		n = 1
	}
	if n > 64 {
		n = 64
	}
	n = 1 << bits.Len(uint(n-1)) // round up to a power of two
	return &Pool{shards: make([]poolShard, n), mask: uint32(n - 1)}
}

// NewDisabledPool returns a pool that never reuses vectors. It implements
// the "vector pooling off" ablation of §5.2.1.
func NewDisabledPool() *Pool {
	p := NewPoolShards(1)
	p.disabled = true
	return p
}

// NumShards reports the shard count.
func (p *Pool) NumShards() int { return len(p.shards) }

// ShardHint hands out a shard index round-robin. Long-lived owners call
// it once and pass the hint to GetN/PutN so their traffic stays on one
// shard (goroutine affinity without runtime support).
func (p *Pool) ShardHint() uint32 { return p.cursor.Add(1) & p.mask }

func (p *Pool) shard(hint uint32) *poolShard { return &p.shards[hint&p.mask] }

// classFor returns the size class whose vectors have dense capacity >= n,
// or -1 when n exceeds the largest class. O(1) via bits.Len.
func classFor(n int) int {
	if n <= 1<<minShift {
		return 0
	}
	c := bits.Len(uint(n-1)) - minShift
	if c >= nClasses {
		return -1
	}
	return c
}

// floorClassFor returns the largest class whose nominal size is <= c
// capacity bytes — the class a returned vector can actually serve.
func floorClassFor(capDense int) int {
	fc := bits.Len(uint(capDense)) - 1 - minShift
	if fc < 0 {
		return 0
	}
	if fc >= nClasses {
		fc = nClasses - 1
	}
	return fc
}

// Get returns a vector whose dense buffer has capacity at least capHint.
// The vector is reset and ready for use.
func (p *Pool) Get(capHint int) *Vector {
	return p.GetAt(p.cursor.Add(1), capHint)
}

// GetAt is Get pinned to the hinted shard.
func (p *Pool) GetAt(hint uint32, capHint int) *Vector {
	if capHint < 0 {
		capHint = 0
	}
	s := p.shard(hint)
	s.gets.Add(1)
	if p.disabled {
		s.allocs.Add(1)
		return New(capHint)
	}
	c := classFor(capHint)
	if c >= 0 {
		s.mu.Lock()
		// Search upward from the requested class: a bigger vector works.
		for cc := c; cc < nClasses; cc++ {
			if n := len(s.classes[cc]); n > 0 {
				v := s.classes[cc][n-1]
				s.classes[cc][n-1] = nil
				s.classes[cc] = s.classes[cc][:n-1]
				s.mu.Unlock()
				s.hits.Add(1)
				v.Reset()
				return v
			}
		}
		s.mu.Unlock()
		capHint = 1 << (minShift + c)
	}
	s.allocs.Add(1)
	return New(capHint)
}

// GetN fills dst with vectors sized by capHints (len(capHints) must equal
// len(dst)) in a single shard visit: one lock round-trip for the whole
// pipeline execution. Misses are allocated outside the critical section.
func (p *Pool) GetN(hint uint32, dst []*Vector, capHints []int) {
	s := p.shard(hint)
	s.gets.Add(uint64(len(dst)))
	if p.disabled {
		s.allocs.Add(uint64(len(dst)))
		for i := range dst {
			dst[i] = New(capHints[i])
		}
		return
	}
	var hits, misses uint64
	s.mu.Lock()
	for i := range dst {
		dst[i] = nil
		c := classFor(capHints[i])
		if c < 0 {
			misses++
			continue
		}
		for cc := c; cc < nClasses; cc++ {
			if n := len(s.classes[cc]); n > 0 {
				v := s.classes[cc][n-1]
				s.classes[cc][n-1] = nil
				s.classes[cc] = s.classes[cc][:n-1]
				dst[i] = v
				hits++
				break
			}
		}
		if dst[i] == nil {
			misses++
		}
	}
	s.mu.Unlock()
	s.hits.Add(hits)
	s.allocs.Add(misses)
	for i := range dst {
		if dst[i] != nil {
			dst[i].Reset()
			continue
		}
		capHint := capHints[i]
		if c := classFor(capHint); c >= 0 {
			capHint = 1 << (minShift + c)
		}
		dst[i] = New(capHint)
	}
}

// GetNUniform is GetN with one capacity hint for every slot (the batch
// engine's row acquisition: all records of a stage share one OutCap).
func (p *Pool) GetNUniform(hint uint32, dst []*Vector, capHint int) {
	s := p.shard(hint)
	s.gets.Add(uint64(len(dst)))
	if p.disabled {
		s.allocs.Add(uint64(len(dst)))
		for i := range dst {
			dst[i] = New(capHint)
		}
		return
	}
	c := classFor(capHint)
	var hits uint64
	if c >= 0 {
		s.mu.Lock()
		for i := range dst {
			dst[i] = nil
			for cc := c; cc < nClasses; cc++ {
				if n := len(s.classes[cc]); n > 0 {
					v := s.classes[cc][n-1]
					s.classes[cc][n-1] = nil
					s.classes[cc] = s.classes[cc][:n-1]
					dst[i] = v
					hits++
					break
				}
			}
		}
		s.mu.Unlock()
		capHint = 1 << (minShift + c)
	} else {
		for i := range dst {
			dst[i] = nil
		}
	}
	s.hits.Add(hits)
	s.allocs.Add(uint64(len(dst)) - hits)
	for i := range dst {
		if dst[i] != nil {
			dst[i].Reset()
		} else {
			dst[i] = New(capHint)
		}
	}
}

// Put returns a vector to the pool. Oversized or disabled-pool vectors
// are dropped for the GC.
func (p *Pool) Put(v *Vector) {
	if v == nil {
		return
	}
	p.PutAt(p.cursor.Add(1), v)
}

// PutAt is Put pinned to the hinted shard.
func (p *Pool) PutAt(hint uint32, v *Vector) {
	if v == nil {
		return
	}
	s := p.shard(hint)
	s.puts.Add(1)
	if p.disabled || cap(v.Dense) > maxVecCap {
		return
	}
	c := floorClassFor(cap(v.Dense))
	v.Reset()
	s.mu.Lock()
	if len(s.classes[c]) < maxPerList {
		s.classes[c] = append(s.classes[c], v)
	}
	s.mu.Unlock()
}

// PutN returns all of vs (nil entries skipped) in a single shard visit.
func (p *Pool) PutN(hint uint32, vs []*Vector) {
	s := p.shard(hint)
	n := 0
	for _, v := range vs {
		if v != nil {
			n++
		}
	}
	if n == 0 {
		return
	}
	s.puts.Add(uint64(n))
	if p.disabled {
		return
	}
	// Reset outside the critical section; the class computation is O(1).
	for _, v := range vs {
		if v != nil && cap(v.Dense) <= maxVecCap {
			v.Reset()
		}
	}
	s.mu.Lock()
	for _, v := range vs {
		if v == nil || cap(v.Dense) > maxVecCap {
			continue
		}
		c := floorClassFor(cap(v.Dense))
		if len(s.classes[c]) < maxPerList {
			s.classes[c] = append(s.classes[c], v)
		}
	}
	s.mu.Unlock()
}

// PoolStats is a snapshot of pool counters aggregated over shards.
type PoolStats struct {
	Gets, Hits, Allocs, Puts uint64
}

// Add accumulates o into st (for aggregating multiple pools).
func (st *PoolStats) Add(o PoolStats) {
	st.Gets += o.Gets
	st.Hits += o.Hits
	st.Allocs += o.Allocs
	st.Puts += o.Puts
}

// Stats returns a snapshot of the pool counters. Lock-free: counters are
// atomics, so a snapshot taken under concurrent traffic is approximate
// but each counter is internally consistent.
func (p *Pool) Stats() PoolStats {
	var st PoolStats
	for i := range p.shards {
		s := &p.shards[i]
		st.Gets += s.gets.Load()
		st.Hits += s.hits.Load()
		st.Allocs += s.allocs.Load()
		st.Puts += s.puts.Load()
	}
	return st
}

// Preallocate fills the pool with n vectors of capacity capHint each,
// spread across shards, so that steady-state serving never allocates
// (§4.2.1 "overheads for instantiating memory ... are paid upfront at
// initialization time").
func (p *Pool) Preallocate(n, capHint int) {
	c := classFor(capHint)
	if c < 0 || p.disabled {
		return
	}
	per := (n + len(p.shards) - 1) / len(p.shards)
	for si := range p.shards {
		s := &p.shards[si]
		vs := make([]*Vector, 0, per)
		for i := 0; i < per; i++ {
			vs = append(vs, New(1<<(minShift+c)))
		}
		s.mu.Lock()
		for _, v := range vs {
			if len(s.classes[c]) < maxPerList {
				s.classes[c] = append(s.classes[c], v)
			}
		}
		s.mu.Unlock()
	}
}
