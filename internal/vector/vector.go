// Package vector provides the data vectors exchanged between pipeline
// stages, plus size-classed pools that let the runtime avoid memory
// allocation on the prediction path (PRETZEL §3 "avoid memory allocation
// on the data path" and §4.2.1 vector pools).
//
// A Vector is a tagged union over the column kinds the operator set needs:
// raw text, token lists, dense float32 vectors and sparse float32 vectors.
// Vectors are mutable buffers owned by exactly one pipeline execution at a
// time; immutability between operators (as in ML.Net) is obtained by
// convention: a stage never writes its input vectors.
package vector

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Kind discriminates the payload held by a Vector.
type Kind uint8

// Payload kinds.
const (
	KindInvalid Kind = iota
	KindText         // a single string (raw input column)
	KindTokens       // a token list produced by a tokenizer
	KindDense        // a dense float32 vector of dimension Dim
	KindSparse       // a sparse float32 vector of dimension Dim
)

// String returns a human-readable kind name.
func (k Kind) String() string {
	switch k {
	case KindText:
		return "text"
	case KindTokens:
		return "tokens"
	case KindDense:
		return "dense"
	case KindSparse:
		return "sparse"
	default:
		return "invalid"
	}
}

// Vector is a reusable buffer holding one column value.
//
// For KindDense, Dense[:Dim] holds the values. For KindSparse, Idx/Val hold
// the non-zero coordinates in strictly increasing index order and Dim is the
// logical dimensionality. For KindTokens, Tokens holds the tokens. For
// KindText, Text holds the string.
type Vector struct {
	Kind   Kind
	Text   string
	Tokens []string
	Dense  []float32
	Idx    []int32
	Val    []float32
	Dim    int

	// Arena-backed token storage used by fused PRETZEL kernels: token i is
	// Arena[TokOff[i]:TokOff[i+1]]. It avoids the per-token string
	// allocations of Tokens. A KindTokens vector uses either Tokens or the
	// arena (NumTokens/TokenAt read both).
	Arena  []byte
	TokOff []int32
}

// New returns an empty, invalid vector with the given dense capacity hint.
func New(capHint int) *Vector {
	if capHint < 0 {
		capHint = 0
	}
	return &Vector{Dense: make([]float32, 0, capHint)}
}

// Reset clears the vector contents but keeps the underlying buffers so the
// vector can be reused without allocation.
func (v *Vector) Reset() {
	v.Kind = KindInvalid
	v.Text = ""
	v.Tokens = v.Tokens[:0]
	v.Dense = v.Dense[:0]
	v.Idx = v.Idx[:0]
	v.Val = v.Val[:0]
	v.Dim = 0
	v.Arena = v.Arena[:0]
	v.TokOff = v.TokOff[:0]
}

// AppendTokenBytes appends one token into the arena (no string
// allocation), making v a token vector if it is not one.
func (v *Vector) AppendTokenBytes(tok []byte) {
	if v.Kind != KindTokens {
		v.Reset()
		v.Kind = KindTokens
	}
	if len(v.TokOff) == 0 {
		v.TokOff = append(v.TokOff, 0)
	}
	v.Arena = append(v.Arena, tok...)
	v.TokOff = append(v.TokOff, int32(len(v.Arena)))
}

// NumTokens returns the token count of a token vector (either storage).
func (v *Vector) NumTokens() int {
	if len(v.TokOff) > 1 {
		return len(v.TokOff) - 1
	}
	return len(v.Tokens)
}

// TokenAt returns token i as bytes, valid until the vector is reset. It
// reads both storage forms.
func (v *Vector) TokenAt(i int) []byte {
	if len(v.TokOff) > 1 {
		return v.Arena[v.TokOff[i]:v.TokOff[i+1]]
	}
	return []byte(v.Tokens[i])
}

// SetText makes v a text vector holding s.
func (v *Vector) SetText(s string) {
	v.Reset()
	v.Kind = KindText
	v.Text = s
}

// SetTokens makes v a token vector holding toks. The slice is retained.
func (v *Vector) SetTokens(toks []string) {
	v.Reset()
	v.Kind = KindTokens
	v.Tokens = toks
}

// AppendToken appends one token, making v a token vector if it is not one.
func (v *Vector) AppendToken(tok string) {
	if v.Kind != KindTokens {
		v.Reset()
		v.Kind = KindTokens
	}
	v.Tokens = append(v.Tokens, tok)
}

// SetDense makes v a dense vector with the given values copied in.
func (v *Vector) SetDense(vals []float32) {
	v.Reset()
	v.Kind = KindDense
	v.Dense = append(v.Dense, vals...)
	v.Dim = len(vals)
}

// UseDense makes v a dense vector of dimension dim, reusing its buffer and
// zeroing it. It returns the writable value slice.
func (v *Vector) UseDense(dim int) []float32 {
	v.Reset()
	v.Kind = KindDense
	if cap(v.Dense) < dim {
		v.Dense = make([]float32, dim)
	} else {
		v.Dense = v.Dense[:dim]
		for i := range v.Dense {
			v.Dense[i] = 0
		}
	}
	v.Dim = dim
	return v.Dense
}

// UseSparse makes v an empty sparse vector of logical dimension dim,
// reusing its buffers.
func (v *Vector) UseSparse(dim int) {
	v.Reset()
	v.Kind = KindSparse
	v.Dim = dim
}

// AppendSparse appends a (index, value) pair to a sparse vector. Callers
// must append in strictly increasing index order; SortSparse repairs
// unordered input if needed.
func (v *Vector) AppendSparse(idx int32, val float32) {
	v.Idx = append(v.Idx, idx)
	v.Val = append(v.Val, val)
}

// AppendSparseShifted bulk-appends a sparse block with every index
// shifted by off. The copies are whole-slice appends and the shift runs
// as one blocked pass over the freshly appended region — the wide form
// of calling AppendSparse(off+idx[k], val[k]) per element.
func (v *Vector) AppendSparseShifted(off int32, idx []int32, val []float32) {
	n := len(v.Idx)
	v.Idx = append(v.Idx, idx...)
	v.Val = append(v.Val, val...)
	if off == 0 {
		return
	}
	ix := v.Idx[n:]
	for len(ix) >= 4 {
		i4 := ix[:4]
		i4[0] += off
		i4[1] += off
		i4[2] += off
		i4[3] += off
		ix = ix[4:]
	}
	for i := range ix {
		ix[i] += off
	}
}

// NNZ returns the number of stored non-zeros of a sparse vector.
func (v *Vector) NNZ() int { return len(v.Idx) }

// sparseSorter sorts parallel Idx/Val slices by index.
type sparseSorter struct{ v *Vector }

func (s sparseSorter) Len() int           { return len(s.v.Idx) }
func (s sparseSorter) Less(i, j int) bool { return s.v.Idx[i] < s.v.Idx[j] }
func (s sparseSorter) Swap(i, j int) {
	s.v.Idx[i], s.v.Idx[j] = s.v.Idx[j], s.v.Idx[i]
	s.v.Val[i], s.v.Val[j] = s.v.Val[j], s.v.Val[i]
}

// SortSparse sorts the sparse entries by index and coalesces duplicates by
// summing their values (the semantics n-gram featurizers need).
func (v *Vector) SortSparse() {
	if v.Kind != KindSparse || len(v.Idx) < 2 {
		return
	}
	sort.Sort(sparseSorter{v})
	// Coalesce duplicates in place.
	w := 0
	for r := 1; r < len(v.Idx); r++ {
		if v.Idx[r] == v.Idx[w] {
			v.Val[w] += v.Val[r]
		} else {
			w++
			v.Idx[w] = v.Idx[r]
			v.Val[w] = v.Val[r]
		}
	}
	v.Idx = v.Idx[:w+1]
	v.Val = v.Val[:w+1]
}

// At returns the value at coordinate i for dense or sparse vectors.
func (v *Vector) At(i int) float32 {
	switch v.Kind {
	case KindDense:
		if i < 0 || i >= len(v.Dense) {
			return 0
		}
		return v.Dense[i]
	case KindSparse:
		lo, hi := 0, len(v.Idx)
		for lo < hi {
			mid := (lo + hi) / 2
			if v.Idx[mid] < int32(i) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(v.Idx) && v.Idx[lo] == int32(i) {
			return v.Val[lo]
		}
		return 0
	default:
		return 0
	}
}

// CopyFrom deep-copies src into v, reusing v's buffers.
func (v *Vector) CopyFrom(src *Vector) {
	v.Reset()
	v.Kind = src.Kind
	v.Text = src.Text
	v.Tokens = append(v.Tokens, src.Tokens...)
	v.Dense = append(v.Dense, src.Dense...)
	v.Idx = append(v.Idx, src.Idx...)
	v.Val = append(v.Val, src.Val...)
	v.Dim = src.Dim
	v.Arena = append(v.Arena, src.Arena...)
	v.TokOff = append(v.TokOff, src.TokOff...)
}

// Clone returns a deep copy of v with freshly allocated buffers.
func (v *Vector) Clone() *Vector {
	c := &Vector{}
	c.CopyFrom(v)
	return c
}

// ToDense materializes v into dst (len dst >= v.Dim) as a dense slice.
func (v *Vector) ToDense(dst []float32) []float32 {
	switch v.Kind {
	case KindDense:
		n := copy(dst, v.Dense)
		return dst[:n]
	case KindSparse:
		dst = dst[:v.Dim]
		for i := range dst {
			dst[i] = 0
		}
		for i, ix := range v.Idx {
			dst[ix] = v.Val[i]
		}
		return dst
	default:
		return dst[:0]
	}
}

// L2Norm returns the Euclidean norm of a dense or sparse vector.
func (v *Vector) L2Norm() float32 {
	var s float64
	switch v.Kind {
	case KindDense:
		for _, x := range v.Dense {
			s += float64(x) * float64(x)
		}
	case KindSparse:
		for _, x := range v.Val {
			s += float64(x) * float64(x)
		}
	}
	return float32(math.Sqrt(s))
}

// Scale multiplies every stored value by f.
func (v *Vector) Scale(f float32) {
	switch v.Kind {
	case KindDense:
		for i := range v.Dense {
			v.Dense[i] *= f
		}
	case KindSparse:
		for i := range v.Val {
			v.Val[i] *= f
		}
	}
}

// Equal reports whether two vectors hold the same logical value.
func (v *Vector) Equal(o *Vector) bool {
	if v.Kind != o.Kind || v.Dim != o.Dim {
		return false
	}
	switch v.Kind {
	case KindText:
		return v.Text == o.Text
	case KindTokens:
		if v.NumTokens() != o.NumTokens() {
			return false
		}
		for i := 0; i < v.NumTokens(); i++ {
			if string(v.TokenAt(i)) != string(o.TokenAt(i)) {
				return false
			}
		}
		return true
	case KindDense:
		if len(v.Dense) != len(o.Dense) {
			return false
		}
		for i := range v.Dense {
			if v.Dense[i] != o.Dense[i] {
				return false
			}
		}
		return true
	case KindSparse:
		if len(v.Idx) != len(o.Idx) {
			return false
		}
		for i := range v.Idx {
			if v.Idx[i] != o.Idx[i] || v.Val[i] != o.Val[i] {
				return false
			}
		}
		return true
	default:
		return true
	}
}

// MemBytes estimates the heap bytes retained by the vector's buffers.
func (v *Vector) MemBytes() int {
	n := cap(v.Dense)*4 + cap(v.Idx)*4 + cap(v.Val)*4 + len(v.Text) + cap(v.Arena) + cap(v.TokOff)*4
	for _, t := range v.Tokens {
		n += len(t) + 16
	}
	return n
}

// String renders a short debug representation.
func (v *Vector) String() string {
	switch v.Kind {
	case KindText:
		return fmt.Sprintf("text(%q)", v.Text)
	case KindTokens:
		n := v.NumTokens()
		head := make([]string, 0, 3)
		for i := 0; i < n && i < 3; i++ {
			head = append(head, string(v.TokenAt(i)))
		}
		return fmt.Sprintf("tokens[%d](%s...)", n, strings.Join(head, ","))
	case KindDense:
		return fmt.Sprintf("dense[%d]", v.Dim)
	case KindSparse:
		return fmt.Sprintf("sparse[%d nnz=%d]", v.Dim, len(v.Idx))
	default:
		return "invalid"
	}
}
