package vector

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindInvalid: "invalid",
		KindText:    "text",
		KindTokens:  "tokens",
		KindDense:   "dense",
		KindSparse:  "sparse",
		Kind(99):    "invalid",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestSetAndReset(t *testing.T) {
	v := New(8)
	v.SetText("hello")
	if v.Kind != KindText || v.Text != "hello" {
		t.Fatalf("SetText: got %v", v)
	}
	v.SetTokens([]string{"a", "b"})
	if v.Kind != KindTokens || len(v.Tokens) != 2 {
		t.Fatalf("SetTokens: got %v", v)
	}
	v.SetDense([]float32{1, 2, 3})
	if v.Kind != KindDense || v.Dim != 3 || v.Dense[2] != 3 {
		t.Fatalf("SetDense: got %v", v)
	}
	v.Reset()
	if v.Kind != KindInvalid || len(v.Dense) != 0 || v.Dim != 0 {
		t.Fatalf("Reset: got %v", v)
	}
}

func TestUseDenseReusesBuffer(t *testing.T) {
	v := New(16)
	d := v.UseDense(10)
	for i := range d {
		d[i] = float32(i)
	}
	ptr := &v.Dense[0]
	d2 := v.UseDense(8)
	if &v.Dense[0] != ptr {
		t.Fatal("UseDense reallocated despite sufficient capacity")
	}
	for i, x := range d2 {
		if x != 0 {
			t.Fatalf("UseDense did not zero: d2[%d]=%v", i, x)
		}
	}
	// Growing beyond capacity must still work.
	d3 := v.UseDense(64)
	if len(d3) != 64 {
		t.Fatalf("UseDense(64) len=%d", len(d3))
	}
}

func TestSparseAppendSortCoalesce(t *testing.T) {
	v := New(0)
	v.UseSparse(100)
	v.AppendSparse(5, 1)
	v.AppendSparse(2, 2)
	v.AppendSparse(5, 3)
	v.AppendSparse(9, 4)
	v.SortSparse()
	if v.NNZ() != 3 {
		t.Fatalf("NNZ after coalesce = %d, want 3", v.NNZ())
	}
	wantIdx := []int32{2, 5, 9}
	wantVal := []float32{2, 4, 4}
	for i := range wantIdx {
		if v.Idx[i] != wantIdx[i] || v.Val[i] != wantVal[i] {
			t.Fatalf("entry %d = (%d,%v), want (%d,%v)", i, v.Idx[i], v.Val[i], wantIdx[i], wantVal[i])
		}
	}
}

func TestAt(t *testing.T) {
	v := New(0)
	v.SetDense([]float32{10, 20, 30})
	if v.At(1) != 20 || v.At(-1) != 0 || v.At(5) != 0 {
		t.Fatal("dense At")
	}
	s := New(0)
	s.UseSparse(10)
	s.AppendSparse(3, 7)
	s.AppendSparse(8, 9)
	if s.At(3) != 7 || s.At(8) != 9 || s.At(4) != 0 || s.At(0) != 0 {
		t.Fatal("sparse At")
	}
	txt := New(0)
	txt.SetText("x")
	if txt.At(0) != 0 {
		t.Fatal("text At should be 0")
	}
}

func TestToDenseAndL2(t *testing.T) {
	s := New(0)
	s.UseSparse(5)
	s.AppendSparse(1, 3)
	s.AppendSparse(4, 4)
	buf := make([]float32, 5)
	d := s.ToDense(buf)
	want := []float32{0, 3, 0, 0, 4}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("ToDense[%d]=%v want %v", i, d[i], want[i])
		}
	}
	if got := s.L2Norm(); math.Abs(float64(got)-5) > 1e-6 {
		t.Fatalf("L2Norm=%v want 5", got)
	}
	dv := New(0)
	dv.SetDense([]float32{3, 4})
	if got := dv.L2Norm(); math.Abs(float64(got)-5) > 1e-6 {
		t.Fatalf("dense L2Norm=%v want 5", got)
	}
}

func TestCopyCloneEqual(t *testing.T) {
	v := New(0)
	v.UseSparse(50)
	v.AppendSparse(1, 1)
	v.AppendSparse(10, 2)
	c := v.Clone()
	if !v.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Val[0] = 99
	if v.Equal(c) {
		t.Fatal("mutating clone affected original equality")
	}
	if v.Val[0] != 1 {
		t.Fatal("clone aliased original buffers")
	}
	var dst Vector
	dst.CopyFrom(v)
	if !dst.Equal(v) {
		t.Fatal("CopyFrom not equal")
	}
}

func TestEqualKindMismatch(t *testing.T) {
	a, b := New(0), New(0)
	a.SetText("x")
	b.SetDense([]float32{1})
	if a.Equal(b) {
		t.Fatal("different kinds must not be equal")
	}
	b.SetText("y")
	if a.Equal(b) {
		t.Fatal("different text must not be equal")
	}
	b.SetText("x")
	if !a.Equal(b) {
		t.Fatal("same text must be equal")
	}
}

func TestScale(t *testing.T) {
	v := New(0)
	v.SetDense([]float32{1, 2})
	v.Scale(2)
	if v.Dense[0] != 2 || v.Dense[1] != 4 {
		t.Fatal("dense scale")
	}
	s := New(0)
	s.UseSparse(4)
	s.AppendSparse(0, 3)
	s.Scale(0.5)
	if s.Val[0] != 1.5 {
		t.Fatal("sparse scale")
	}
}

func TestPoolReuse(t *testing.T) {
	p := NewPool()
	v := p.Get(100)
	if cap(v.Dense) < 100 {
		t.Fatalf("Get(100) cap=%d", cap(v.Dense))
	}
	v.UseDense(100)
	p.Put(v)
	v2 := p.Get(80)
	if v2 != v {
		t.Fatal("pool did not reuse the returned vector")
	}
	if v2.Kind != KindInvalid {
		t.Fatal("pooled vector not reset")
	}
	st := p.Stats()
	if st.Gets != 2 || st.Hits != 1 || st.Allocs != 1 || st.Puts != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPoolDisabled(t *testing.T) {
	p := NewDisabledPool()
	v := p.Get(10)
	p.Put(v)
	v2 := p.Get(10)
	if v2 == v {
		t.Fatal("disabled pool must not reuse")
	}
	st := p.Stats()
	if st.Hits != 0 || st.Allocs != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPoolOversized(t *testing.T) {
	p := NewPool()
	v := p.Get(maxVecCap * 2) // beyond largest class
	if cap(v.Dense) < maxVecCap*2 {
		t.Fatal("oversized get did not allocate enough")
	}
	p.Put(v) // must not panic; dropped
	v2 := p.Get(maxVecCap * 2)
	if v2 == v {
		t.Fatal("oversized vector should not be pooled")
	}
}

func TestPoolPreallocate(t *testing.T) {
	p := NewPool()
	p.Preallocate(8, 256)
	for i := 0; i < 8; i++ {
		v := p.Get(200)
		if cap(v.Dense) < 200 {
			t.Fatalf("prealloc vector too small: %d", cap(v.Dense))
		}
	}
	st := p.Stats()
	if st.Hits != 8 {
		t.Fatalf("expected 8 hits, got %+v", st)
	}
}

func TestClassFor(t *testing.T) {
	if classFor(0) != 0 || classFor(64) != 0 {
		t.Fatal("classFor small")
	}
	if classFor(65) != 1 {
		t.Fatal("classFor(65)")
	}
	if classFor(maxVecCap) != nClasses-1 {
		t.Fatal("classFor(max)")
	}
	if classFor(maxVecCap+1) != -1 {
		t.Fatal("classFor(over max)")
	}
}

// Property: SortSparse yields strictly increasing indices and preserves the
// per-coordinate sum.
func TestSortSparseProperty(t *testing.T) {
	f := func(pairs []uint16) bool {
		v := New(0)
		v.UseSparse(1 << 16)
		sums := map[int32]float32{}
		for i, p := range pairs {
			idx := int32(p % 1024)
			val := float32(i%7) + 1
			v.AppendSparse(idx, val)
			sums[idx] += val
		}
		v.SortSparse()
		for i := 1; i < v.NNZ(); i++ {
			if v.Idx[i] <= v.Idx[i-1] {
				return false
			}
		}
		if v.NNZ() != len(sums) {
			return false
		}
		for i := 0; i < v.NNZ(); i++ {
			if math.Abs(float64(sums[v.Idx[i]]-v.Val[i])) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: ToDense(sparse) then At agree for every coordinate.
func TestSparseDenseAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 50; iter++ {
		dim := 1 + rng.Intn(200)
		v := New(0)
		v.UseSparse(dim)
		for k := 0; k < rng.Intn(dim+1); k++ {
			v.AppendSparse(int32(rng.Intn(dim)), rng.Float32())
		}
		v.SortSparse()
		buf := make([]float32, dim)
		d := v.ToDense(buf)
		for i := 0; i < dim; i++ {
			if d[i] != v.At(i) {
				t.Fatalf("iter %d: coord %d dense=%v at=%v", iter, i, d[i], v.At(i))
			}
		}
	}
}

func TestPoolConcurrent(t *testing.T) {
	p := NewPool()
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				v := p.Get(128)
				v.UseDense(100)[0] = 1
				p.Put(v)
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	st := p.Stats()
	if st.Gets != 8000 || st.Puts != 8000 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMemBytes(t *testing.T) {
	v := New(16)
	if v.MemBytes() < 64 {
		t.Fatalf("MemBytes too small: %d", v.MemBytes())
	}
	v.SetTokens([]string{"abc", "de"})
	if v.MemBytes() < 64+3+2 {
		t.Fatalf("MemBytes missing tokens: %d", v.MemBytes())
	}
}

func TestString(t *testing.T) {
	v := New(0)
	for _, setup := range []func(){
		func() { v.SetText("t") },
		func() { v.SetTokens([]string{"a", "b", "c", "d"}) },
		func() { v.SetDense([]float32{1}) },
		func() { v.UseSparse(3) },
		func() { v.Reset() },
	} {
		setup()
		if v.String() == "" {
			t.Fatal("empty String()")
		}
	}
}
