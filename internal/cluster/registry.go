package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Member identifies one serving node.
type Member struct {
	// ID is the node's stable identity on the hash ring (defaults to
	// Addr). Placement is keyed by ID, so a node that moves address
	// keeps its models.
	ID string
	// Addr is the node's HTTP base URL ("http://host:port"; a bare
	// "host:port" gets the http scheme).
	Addr string
}

// normalize fills defaults: scheme and ID.
func (m Member) normalize() Member {
	m.Addr = strings.TrimRight(m.Addr, "/")
	if m.Addr != "" && !strings.Contains(m.Addr, "://") {
		m.Addr = "http://" + m.Addr
	}
	if m.ID == "" {
		m.ID = m.Addr
	}
	return m
}

// memberState is one member plus its live health/traffic state.
type memberState struct {
	Member

	// healthy/ready mirror the node's /healthz and /readyz probes.
	// Members start optimistic (true) so a router can serve before the
	// first probe round; the breaker absorbs the gap if a node is
	// actually down.
	healthy atomic.Bool
	ready   atomic.Bool
	lastErr atomic.Value // string

	// failStreak counts consecutive failed probe rounds: the member is
	// marked down only when it reaches the registry's hysteresis
	// threshold, so one slow probe does not trigger a rebalance.
	failStreak atomic.Int32

	// quarantined is the model set the member's /readyz last reported
	// quarantined (atomic.Value of map[string]bool; nil = none).
	quarantined atomic.Value

	// warmth is the member's latest lifecycle snapshot from the
	// router's warmth poll (atomic.Value of *nodeWarmth; nil = never
	// polled or member exposes no lifecycle state).
	warmth atomic.Value

	br *breaker

	forwards atomic.Uint64
	failures atomic.Uint64
}

// isQuarantined reports whether the member's last readyz probe listed
// the bare model name as quarantined.
func (m *memberState) isQuarantined(name string) bool {
	q, _ := m.quarantined.Load().(map[string]bool)
	return q[name]
}

// warmthSnapshot returns the member's latest warmth-poll snapshot (nil
// when none exists).
func (m *memberState) warmthSnapshot() *nodeWarmth {
	w, _ := m.warmth.Load().(*nodeWarmth)
	return w
}

// up reports whether the member is currently routable at full priority.
func (m *memberState) up() bool { return m.healthy.Load() && m.ready.Load() }

// registry tracks the member set and probes each node's /healthz and
// /readyz on an interval — the cluster reuse of the mgmt-plane probes
// every node already serves. Membership is dynamic: the router's
// rebalancer adds and removes members at runtime.
type registry struct {
	client   *http.Client
	interval time.Duration
	// maxFails is the hysteresis threshold M: consecutive failed probe
	// rounds before a member is marked down.
	maxFails    int
	brThreshold int
	brCooldown  time.Duration

	// onDown, when set (before start), is invoked once per up→down
	// transition with the member's ID — the rebalancer's pre-warm
	// trigger. Called from a probe goroutine; must not block on the
	// registry.
	onDown func(id string)

	mu      sync.RWMutex
	members map[string]*memberState

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// newRegistry builds the member set WITHOUT starting the probe loop;
// call start once the owner has wired its callbacks.
func newRegistry(members []Member, client *http.Client, interval time.Duration, maxFails, brThreshold int, brCooldown time.Duration) (*registry, error) {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	if maxFails <= 0 {
		maxFails = 2
	}
	r := &registry{
		client:      client,
		interval:    interval,
		maxFails:    maxFails,
		brThreshold: brThreshold,
		brCooldown:  brCooldown,
		members:     make(map[string]*memberState, len(members)),
		stop:        make(chan struct{}),
	}
	for _, m := range members {
		if _, err := r.add(m); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// start launches the probe loop.
func (r *registry) start() {
	r.wg.Add(1)
	go r.probeLoop()
}

// add registers a new member (normalized), optimistic until probed.
func (r *registry) add(m Member) (*memberState, error) {
	m = m.normalize()
	if m.Addr == "" {
		return nil, fmt.Errorf("cluster: member %q has no address", m.ID)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.members[m.ID]; dup {
		return nil, fmt.Errorf("cluster: duplicate member id %q", m.ID)
	}
	ms := &memberState{Member: m, br: newBreaker(r.brThreshold, r.brCooldown)}
	ms.healthy.Store(true)
	ms.ready.Store(true)
	r.members[m.ID] = ms
	return ms, nil
}

// remove drops a member from the set (its in-flight requests finish;
// the ring decides routing, the registry only tracks state).
func (r *registry) remove(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[id]; !ok {
		return false
	}
	delete(r.members, id)
	return true
}

// get returns a member by ID (nil when unknown).
func (r *registry) get(id string) *memberState {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.members[id]
}

// all returns every member, unordered.
func (r *registry) all() []*memberState {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*memberState, 0, len(r.members))
	for _, m := range r.members {
		out = append(out, m)
	}
	return out
}

// close stops the probe loop.
func (r *registry) close() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.wg.Wait()
}

// probeLoop health-checks every member each interval until closed.
func (r *registry) probeLoop() {
	defer r.wg.Done()
	// First round immediately: a router should converge on real node
	// state in one interval, not two.
	r.probeAll()
	t := time.NewTicker(r.interval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.probeAll()
		}
	}
}

func (r *registry) probeAll() {
	var wg sync.WaitGroup
	for _, m := range r.all() {
		wg.Add(1)
		go func(m *memberState) {
			defer wg.Done()
			r.probe(m)
		}(m)
	}
	wg.Wait()
}

// probe hits one node's /healthz and /readyz. Each request gets its
// own timeout budget: a slow healthz must not starve the readyz check
// into falsely marking a ready node not-ready.
//
// Down-marking is damped: transport failures (and non-200 healthz)
// only take effect after maxFails CONSECUTIVE failed rounds, so one
// dropped packet or GC pause does not flap routing or trigger a
// rebalance. Recovery is immediate — one clean round marks the member
// back up. A readyz that ANSWERS non-200 is authoritative (the node
// itself says "don't route to me": draining, blackout) and flips
// readiness without damping.
func (r *registry) probe(m *memberState) {
	ok, err := r.check(m.Addr + "/healthz")
	if !ok {
		r.noteProbeFailure(m, err, true)
		return
	}
	status, quarantined, rerr := r.checkReady(m.Addr + "/readyz")
	if rerr != nil {
		// Transport flake on readyz while healthz answered: damp it
		// like a health failure, but the process is demonstrably alive.
		r.noteProbeFailure(m, rerr, false)
		return
	}
	m.failStreak.Store(0)
	m.healthy.Store(true)
	if status == http.StatusOK {
		m.ready.Store(true)
		m.quarantined.Store(quarantined)
		m.lastErr.Store("")
		return
	}
	// Authoritative not-ready: immediate, no hysteresis.
	wasUp := m.up()
	m.ready.Store(false)
	m.lastErr.Store(fmt.Sprintf("%s/readyz: status %d", m.Addr, status))
	if wasUp && r.onDown != nil {
		r.onDown(m.ID)
	}
}

// noteProbeFailure records one failed probe round, applying the
// hysteresis threshold before the member's routing state changes.
func (r *registry) noteProbeFailure(m *memberState, err error, dead bool) {
	if err != nil {
		m.lastErr.Store(err.Error())
	}
	if int(m.failStreak.Add(1)) < r.maxFails {
		return // flap damping: keep routing state until the streak proves it
	}
	wasUp := m.up()
	if dead {
		m.healthy.Store(false)
	}
	m.ready.Store(false)
	if wasUp && r.onDown != nil {
		r.onDown(m.ID)
	}
}

func (r *registry) check(url string) (bool, error) {
	resp, err := r.probeGet(url)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return true, nil
}

// checkReady probes /readyz, returning the status code and the
// quarantined-model set a 200 body reports. A transport failure
// returns err != nil; a non-200 ANSWER is (status, nil, nil) — the
// node spoke for itself.
func (r *registry) checkReady(url string) (int, map[string]bool, error) {
	resp, err := r.probeGet(url)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil, nil
	}
	var body struct {
		Quarantined []string `json:"quarantined"`
	}
	if derr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&body); derr != nil || len(body.Quarantined) == 0 {
		return resp.StatusCode, nil, nil
	}
	q := make(map[string]bool, len(body.Quarantined))
	for _, name := range body.Quarantined {
		q[name] = true
	}
	return resp.StatusCode, q, nil
}

func (r *registry) probeGet(url string) (*http.Response, error) {
	timeout := r.interval
	if timeout > time.Second {
		timeout = time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	// Read the bounded body inside the probe timeout and hand back a
	// replayable response, so callers never hold a live connection.
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	resp.Body = io.NopCloser(strings.NewReader(string(raw)))
	return resp, nil
}
