package cluster

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Member identifies one serving node.
type Member struct {
	// ID is the node's stable identity on the hash ring (defaults to
	// Addr). Placement is keyed by ID, so a node that moves address
	// keeps its models.
	ID string
	// Addr is the node's HTTP base URL ("http://host:port"; a bare
	// "host:port" gets the http scheme).
	Addr string
}

// normalize fills defaults: scheme and ID.
func (m Member) normalize() Member {
	m.Addr = strings.TrimRight(m.Addr, "/")
	if m.Addr != "" && !strings.Contains(m.Addr, "://") {
		m.Addr = "http://" + m.Addr
	}
	if m.ID == "" {
		m.ID = m.Addr
	}
	return m
}

// memberState is one member plus its live health/traffic state.
type memberState struct {
	Member

	// healthy/ready mirror the node's /healthz and /readyz probes.
	// Members start optimistic (true) so a router can serve before the
	// first probe round; the breaker absorbs the gap if a node is
	// actually down.
	healthy atomic.Bool
	ready   atomic.Bool
	lastErr atomic.Value // string

	br *breaker

	forwards atomic.Uint64
	failures atomic.Uint64
}

// registry tracks the member set and probes each node's /healthz and
// /readyz on an interval — the cluster reuse of the mgmt-plane probes
// every node already serves.
type registry struct {
	client   *http.Client
	interval time.Duration

	mu      sync.RWMutex
	members map[string]*memberState

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

func newRegistry(members []Member, client *http.Client, interval time.Duration, brThreshold int, brCooldown time.Duration) (*registry, error) {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	r := &registry{
		client:   client,
		interval: interval,
		members:  make(map[string]*memberState, len(members)),
		stop:     make(chan struct{}),
	}
	for _, m := range members {
		m = m.normalize()
		if m.Addr == "" {
			return nil, fmt.Errorf("cluster: member %q has no address", m.ID)
		}
		if _, dup := r.members[m.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate member id %q", m.ID)
		}
		ms := &memberState{Member: m, br: newBreaker(brThreshold, brCooldown)}
		ms.healthy.Store(true)
		ms.ready.Store(true)
		r.members[m.ID] = ms
	}
	r.wg.Add(1)
	go r.probeLoop()
	return r, nil
}

// get returns a member by ID (nil when unknown).
func (r *registry) get(id string) *memberState {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.members[id]
}

// all returns every member, unordered.
func (r *registry) all() []*memberState {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*memberState, 0, len(r.members))
	for _, m := range r.members {
		out = append(out, m)
	}
	return out
}

// close stops the probe loop.
func (r *registry) close() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.wg.Wait()
}

// probeLoop health-checks every member each interval until closed.
func (r *registry) probeLoop() {
	defer r.wg.Done()
	// First round immediately: a router should converge on real node
	// state in one interval, not two.
	r.probeAll()
	t := time.NewTicker(r.interval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.probeAll()
		}
	}
}

func (r *registry) probeAll() {
	var wg sync.WaitGroup
	for _, m := range r.all() {
		wg.Add(1)
		go func(m *memberState) {
			defer wg.Done()
			r.probe(m)
		}(m)
	}
	wg.Wait()
}

// probe hits one node's /healthz and /readyz. Each request gets its
// own timeout budget: a slow healthz must not starve the readyz check
// into falsely marking a ready node not-ready.
func (r *registry) probe(m *memberState) {
	ok, err := r.check(m.Addr + "/healthz")
	m.healthy.Store(ok)
	if err != nil {
		m.lastErr.Store(err.Error())
		m.ready.Store(false)
		return
	}
	ready, err := r.check(m.Addr + "/readyz")
	m.ready.Store(ready)
	if err != nil {
		m.lastErr.Store(err.Error())
	} else {
		m.lastErr.Store("")
	}
}

func (r *registry) check(url string) (bool, error) {
	timeout := r.interval
	if timeout > time.Second {
		timeout = time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return false, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return true, nil
}
