// Package cluster is the horizontal serving tier over the
// transport-agnostic serving.Engine seam: a node registry with
// health-checked members, consistent-hash model placement with a
// configurable replication factor, and a routing engine that proxies
// predictions to owner nodes with failover retry and per-node circuit
// breaking.
//
// Placement is the cluster-scale analog of the paper's §4.2 Object
// Store sharing: instead of replicating every model on every node (the
// black-box tier's default), a model lives on K of N nodes, so fleet
// memory grows with K·models, not N·models — sublinear in fleet size —
// while the white-box management plane still sees and steers every
// replica.
package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per member when the router
// config leaves it zero: enough points that K-of-N ownership spreads
// evenly for small fleets without making ring updates expensive.
const DefaultVNodes = 64

// ringPoint is one virtual node on the hash circle.
type ringPoint struct {
	hash uint64
	node string
}

// Ring is a consistent-hash circle of node IDs. It is not
// goroutine-safe; the router guards it (membership is static today,
// but Remove keeps rebalancing cheap when it becomes dynamic).
type Ring struct {
	vnodes int
	points []ringPoint
	nodes  map[string]bool
}

// NewRing builds an empty ring with the given virtual-node count per
// member (<= 0 picks DefaultVNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, nodes: make(map[string]bool)}
}

// VNodes returns the per-member virtual-node count.
func (r *Ring) VNodes() int { return r.vnodes }

// hash64 is FNV-1a with a murmur-style 64-bit finalizer. Raw FNV of
// short strings that differ only in a suffix ("node0#1", "node0#2",
// …) lands in one narrow arc of the circle — every virtual node of a
// member clustered together, defeating the whole point of virtual
// nodes. The avalanche mix decorrelates them.
func hash64(s string) uint64 {
	f := fnv.New64a()
	_, _ = f.Write([]byte(s))
	h := f.Sum64()
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Add inserts a node's virtual points into the ring.
func (r *Ring) Add(node string) {
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hash: hash64(node + "#" + strconv.Itoa(i)), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a node's virtual points from the ring. Keys the node
// owned move to their clockwise successors; everything else stays put
// — the consistent-hash property that makes membership changes cheap.
func (r *Ring) Remove(node string) {
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Clone returns an independent copy of the ring — the rebalancer
// computes ownership deltas on a clone and swaps it in atomically, so
// routing never observes a half-updated circle.
func (r *Ring) Clone() *Ring {
	c := &Ring{
		vnodes: r.vnodes,
		points: append([]ringPoint(nil), r.points...),
		nodes:  make(map[string]bool, len(r.nodes)),
	}
	for n := range r.nodes {
		c.nodes[n] = true
	}
	return c
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes returns the member IDs, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Owners returns the K distinct nodes owning a key: the first K
// distinct members encountered walking the circle clockwise from the
// key's hash. K is clamped to the member count. The first owner is the
// key's primary; the rest are its failover replicas.
func (r *Ring) Owners(key string, k int) []string {
	n := len(r.nodes)
	if n == 0 || k <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]string, 0, k)
	seen := make(map[string]bool, k)
	for i := 0; i < len(r.points) && len(owners) < k; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			owners = append(owners, p.node)
		}
	}
	return owners
}
