package cluster

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBreakerLifecycle walks one circuit through closed → open →
// half-open → closed and the re-open branch with a fixed clock.
func TestBreakerLifecycle(t *testing.T) {
	t0 := time.Now()
	b := newBreaker(3, time.Second)

	if got := b.state(t0); got != breakerClosed {
		t.Fatalf("fresh breaker state = %q, want closed", got)
	}
	b.failure(t0)
	b.failure(t0)
	if !b.allow(t0) {
		t.Fatal("breaker opened before threshold")
	}
	b.failure(t0)
	if b.allow(t0.Add(time.Millisecond)) {
		t.Fatal("breaker allowed traffic while open")
	}
	if got := b.state(t0.Add(time.Millisecond)); got != breakerOpen {
		t.Fatalf("state after threshold failures = %q, want open", got)
	}

	// Cooldown elapsed: exactly one half-open trial, which re-closes on
	// success.
	t1 := t0.Add(time.Second)
	if got := b.state(t1); got != breakerHalfOpen {
		t.Fatalf("state after cooldown = %q, want half-open", got)
	}
	if !b.allow(t1) {
		t.Fatal("half-open breaker refused the trial request")
	}
	if b.allow(t1) {
		t.Fatal("half-open breaker admitted a second concurrent trial")
	}
	b.success()
	if got := b.state(t1); got != breakerClosed {
		t.Fatalf("state after trial success = %q, want closed", got)
	}

	// Re-open branch: a failing trial re-opens for a full cooldown.
	b.failure(t1)
	b.failure(t1)
	b.failure(t1)
	t2 := t1.Add(time.Second)
	if !b.allow(t2) {
		t.Fatal("half-open breaker refused the trial request")
	}
	b.failure(t2)
	if b.allow(t2.Add(time.Millisecond)) {
		t.Fatal("breaker allowed traffic right after a failed trial")
	}

	// A wedged trial (never reports back) stops blocking after one
	// cooldown, so the circuit cannot be wedged shut.
	t3 := t2.Add(time.Second)
	if !b.allow(t3) {
		t.Fatal("half-open breaker refused the trial request")
	}
	if !b.allow(t3.Add(time.Second)) {
		t.Fatal("breaker stayed shut behind a wedged trial")
	}
}

// TestBreakerHalfOpenSingleTrial opens the circuit, then races many
// goroutines calling allow at the same instant the cooldown expires:
// exactly one may win the half-open trial slot. Repeated across rounds
// so the race detector sees the transition under real contention.
func TestBreakerHalfOpenSingleTrial(t *testing.T) {
	const goroutines = 32
	for round := 0; round < 50; round++ {
		t0 := time.Now()
		b := newBreaker(3, time.Second)
		for i := 0; i < 3; i++ {
			b.failure(t0)
		}
		t1 := t0.Add(time.Second) // cooldown just elapsed
		var admitted atomic.Int64
		var start, done sync.WaitGroup
		start.Add(1)
		done.Add(goroutines)
		for g := 0; g < goroutines; g++ {
			go func() {
				defer done.Done()
				start.Wait()
				if b.allow(t1) {
					admitted.Add(1)
				}
			}()
		}
		start.Done()
		done.Wait()
		if n := admitted.Load(); n != 1 {
			t.Fatalf("round %d: %d goroutines admitted into half-open window, want 1", round, n)
		}
	}
}

// TestBreakerStress hammers every breaker method from concurrent
// goroutines with a tiny cooldown, so closed/open/half-open
// transitions happen constantly while the race detector watches. The
// correctness claims are that nothing races or deadlocks and the
// observable state is always one of the three names.
func TestBreakerStress(t *testing.T) {
	const (
		goroutines = 8
		iters      = 2000
	)
	b := newBreaker(2, 50*time.Microsecond)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				now := time.Now()
				switch (g + i) % 4 {
				case 0:
					b.allow(now)
				case 1:
					b.failure(now)
				case 2:
					b.success()
				case 3:
					switch s := b.state(now); s {
					case breakerClosed, breakerOpen, breakerHalfOpen:
					default:
						panic("breaker state " + s)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	// After the dust settles the breaker must still operate: a success
	// closes it and traffic flows.
	b.success()
	if !b.allow(time.Now()) {
		t.Fatal("breaker wedged shut after stress")
	}
}
