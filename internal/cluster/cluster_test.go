package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"pretzel/internal/frontend"
	"pretzel/internal/ml"
	"pretzel/internal/ops"
	"pretzel/internal/oven"
	"pretzel/internal/pipeline"
	"pretzel/internal/runtime"
	"pretzel/internal/schema"
	"pretzel/internal/serving"
	"pretzel/internal/store"
	"pretzel/internal/text"
)

// testPipe builds a deterministic little SA pipeline.
func testPipe(t testing.TB, name string) *pipeline.Pipeline {
	t.Helper()
	cb, wb := text.NewDictBuilder(), text.NewDictBuilder()
	for _, doc := range []string{"nice product great", "bad refund awful"} {
		toks := text.Tokenize(doc, nil)
		for _, tok := range toks {
			text.ObserveCharNgrams(cb, []byte(tok), 2, 3)
		}
		text.ObserveWordNgrams(wb, toks, 2, nil)
	}
	cd, wd := cb.Build(0), wb.Build(0)
	weights := make([]float32, cd.Size()+wd.Size())
	if ix := wd.Lookup("nice"); ix >= 0 {
		weights[cd.Size()+int(ix)] = 3
	}
	return &pipeline.Pipeline{
		Name:        name,
		InputSchema: schema.Text("Text"),
		Nodes: []pipeline.Node{
			{Op: &ops.Tokenizer{}, Inputs: []int{pipeline.InputID}},
			{Op: &ops.CharNgram{MinN: 2, MaxN: 3, Dict: cd}, Inputs: []int{0}},
			{Op: &ops.WordNgram{MaxN: 2, Dict: wd}, Inputs: []int{0}},
			{Op: &ops.Concat{Dims: []int{cd.Size(), wd.Size()}}, Inputs: []int{1, 2}},
			{Op: &ops.LinearPredictor{Model: &ml.LinearModel{Kind: ml.LogisticRegression, Weights: weights}}, Inputs: []int{3}},
		},
	}
}

func exportPipe(t testing.TB, name string) []byte {
	t.Helper()
	zip, err := testPipe(t, name).ExportBytes()
	if err != nil {
		t.Fatal(err)
	}
	return zip
}

// node is one in-process cluster member: a real runtime behind a real
// HTTP front end on a loopback listener.
type node struct {
	rt  *runtime.Runtime
	srv *httptest.Server
}

func newNode(t testing.TB) *node {
	t.Helper()
	rt := runtime.New(store.New(), runtime.Config{Executors: 2})
	t.Cleanup(rt.Close)
	fe := frontend.New(serving.NewLocal(rt, nil), frontend.Config{})
	srv := httptest.NewServer(fe)
	t.Cleanup(srv.Close)
	return &node{rt: rt, srv: srv}
}

// newCluster starts n nodes and a router with the given replication.
func newCluster(t testing.TB, n, replication int) ([]*node, *Router) {
	t.Helper()
	nodes := make([]*node, n)
	members := make([]Member, n)
	for i := range nodes {
		nodes[i] = newNode(t)
		members[i] = Member{ID: fmt.Sprintf("node%d", i), Addr: nodes[i].srv.URL}
	}
	r, err := NewRouter(members, Config{
		Replication:     replication,
		ProbeInterval:   50 * time.Millisecond,
		BreakerCooldown: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return nodes, r
}

func nodeByID(nodes []*node, id string) *node {
	for i, n := range nodes {
		if fmt.Sprintf("node%d", i) == id {
			return n
		}
	}
	return nil
}

// --- ring unit tests ---

func TestRingOwners(t *testing.T) {
	r := NewRing(64)
	for _, n := range []string{"a", "b", "c"} {
		r.Add(n)
	}
	owners := r.Owners("model-x", 2)
	if len(owners) != 2 || owners[0] == owners[1] {
		t.Fatalf("owners %v", owners)
	}
	// Stable: same key, same owners.
	again := r.Owners("model-x", 2)
	if owners[0] != again[0] || owners[1] != again[1] {
		t.Fatalf("unstable placement %v vs %v", owners, again)
	}
	// K clamps to the member count.
	if got := r.Owners("model-x", 9); len(got) != 3 {
		t.Fatalf("clamped owners %v", got)
	}
	// Every node owns something across enough keys.
	counts := map[string]int{}
	for i := 0; i < 200; i++ {
		counts[r.Owners(fmt.Sprintf("m-%d", i), 1)[0]]++
	}
	for _, n := range []string{"a", "b", "c"} {
		if counts[n] == 0 {
			t.Fatalf("node %s owns nothing: %v", n, counts)
		}
	}
}

// TestRingRemoveMinimalMovement: removing a node only moves the keys it
// owned — the consistent-hashing property.
func TestRingRemoveMinimalMovement(t *testing.T) {
	r := NewRing(64)
	for _, n := range []string{"a", "b", "c"} {
		r.Add(n)
	}
	before := map[string]string{}
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("m-%d", i)
		before[k] = r.Owners(k, 1)[0]
	}
	r.Remove("b")
	for k, prev := range before {
		now := r.Owners(k, 1)[0]
		if prev != "b" && now != prev {
			t.Fatalf("key %s moved %s→%s though its owner stayed", k, prev, now)
		}
		if now == "b" {
			t.Fatalf("key %s still owned by removed node", k)
		}
	}
}

func TestBreaker(t *testing.T) {
	now := time.Now()
	b := newBreaker(3, time.Second)
	for i := 0; i < 3; i++ {
		if !b.allow(now) {
			t.Fatalf("closed breaker must allow (failure %d)", i)
		}
		b.failure(now)
	}
	if b.state(now) != breakerOpen || b.allow(now) {
		t.Fatalf("breaker must be open after threshold: %s", b.state(now))
	}
	// After the cooldown, exactly one half-open trial is admitted.
	later := now.Add(2 * time.Second)
	if b.state(later) != breakerHalfOpen || !b.allow(later) {
		t.Fatal("cooldown must admit a trial")
	}
	if b.allow(later) {
		t.Fatal("only one trial at a time in half-open")
	}
	b.success()
	if b.state(later) != breakerClosed || !b.allow(later) {
		t.Fatal("trial success must close the circuit")
	}
}

// TestBreakerTrialNotWedgeable: a half-open trial that never reports
// back (wedged connection) stops blocking after one cooldown — the
// circuit must not be wedge-able shut forever.
func TestBreakerTrialNotWedgeable(t *testing.T) {
	now := time.Now()
	b := newBreaker(1, time.Second)
	b.failure(now) // open
	trial := now.Add(2 * time.Second)
	if !b.allow(trial) {
		t.Fatal("cooldown must admit a trial")
	}
	// The trial never calls success/failure. One cooldown later a new
	// trial must be admitted anyway.
	if b.allow(trial.Add(500 * time.Millisecond)) {
		t.Fatal("second trial admitted while first still pending")
	}
	if !b.allow(trial.Add(1100 * time.Millisecond)) {
		t.Fatal("wedged trial must expire and admit a new one")
	}
}

// TestUnknownModelDoesNotTripBreakers: replicas answering 404 are
// doing their job — junk model names must never open the circuit of a
// healthy node (that would 429 legitimate co-owned models).
func TestUnknownModelDoesNotTripBreakers(t *testing.T) {
	_, router := newCluster(t, 2, 2)
	for i := 0; i < 10; i++ {
		if _, err := router.Predict(context.Background(), "typo-model", "x", serving.PredictOptions{}); !errors.Is(err, runtime.ErrModelNotFound) {
			t.Fatalf("unknown model predict %d: %v", i, err)
		}
	}
	st := router.Stats()
	for _, ns := range st.Cluster.Nodes {
		if ns.Breaker != breakerClosed || ns.Failures != 0 {
			t.Fatalf("node %s penalized for 404s: breaker=%s failures=%d", ns.ID, ns.Breaker, ns.Failures)
		}
	}
	// A real model co-owned by the same nodes still serves.
	if _, err := router.Register(exportPipe(t, "sa-co"), serving.RegisterOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := router.Predict(context.Background(), "sa-co", "a nice product", serving.PredictOptions{}); err != nil {
		t.Fatalf("co-owned model after 404 storm: %v", err)
	}
}

// TestResolveCached: successful resolutions are served from the TTL
// cache (no extra catalog reads per predict), and lifecycle operations
// through the router invalidate immediately.
func TestResolveCached(t *testing.T) {
	nodes, router := newCluster(t, 2, 2)
	if _, err := router.Register(exportPipe(t, "sa-rc"), serving.RegisterOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, v, err := router.Resolve("sa-rc"); err != nil || v != 1 {
		t.Fatalf("resolve: %d %v", v, err)
	}
	// Kill every node: a cached resolution must still answer (no
	// remote call), proving the hot path skips the catalog read.
	for _, n := range nodes {
		n.srv.Close()
	}
	if _, v, err := router.Resolve("sa-rc"); err != nil || v != 1 {
		t.Fatalf("cached resolve after node death: %d %v", v, err)
	}
	// And expiry brings the remote path (now failing) back.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if _, _, err := router.Resolve("sa-rc"); err != nil {
			return // TTL expired, remote resolve failed as expected
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("resolve cache never expired")
}

// --- acceptance: placement memory ---

// TestPlacementMemorySublinear is acceptance (a): with replication K=2
// of N=3, a model registered through the router lands on exactly 2
// nodes and the fleet's memory for it stays under 3× a single node's —
// the point of placement over replicate-everywhere.
func TestPlacementMemorySublinear(t *testing.T) {
	nodes, router := newCluster(t, 3, 2)
	zip := exportPipe(t, "sa-mem")

	reg, err := router.Register(zip, serving.RegisterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if reg.Name != "sa-mem" || reg.Version != 1 || len(reg.Nodes) != 2 {
		t.Fatalf("register result %+v", reg)
	}

	// Single-node baseline footprint.
	baseStore := store.New()
	baseRT := runtime.New(baseStore, runtime.Config{Executors: 1})
	defer baseRT.Close()
	p, err := pipeline.ImportBytes(zip)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := oven.Compile(p, baseStore, oven.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := baseRT.Register(pl); err != nil {
		t.Fatal(err)
	}
	base := baseRT.MemBytes()
	if base == 0 {
		t.Fatal("baseline MemBytes is zero")
	}

	holders, fleet := 0, 0
	for _, n := range nodes {
		fleet += n.rt.MemBytes()
		if len(n.rt.Names()) > 0 {
			holders++
		}
	}
	if holders != 2 {
		t.Fatalf("model on %d nodes, want 2 (K=2)", holders)
	}
	if fleet >= 3*base {
		t.Fatalf("fleet MemBytes %d not sublinear (single node %d, 3x = %d)", fleet, base, 3*base)
	}

	// The routed predict round-trips through an owner.
	pred, err := router.Predict(context.Background(), "sa-mem", "a nice product", serving.PredictOptions{})
	if err != nil || len(pred) != 1 {
		t.Fatalf("routed predict: %v %v", pred, err)
	}
}

// --- acceptance: failover ---

// TestFailoverKeepsServing is acceptance (b): killing one owner node
// mid-load keeps the success rate at 100% for a replicated model — the
// router retries node-level failures on the surviving replica and the
// circuit breaker stops paying for the corpse.
func TestFailoverKeepsServing(t *testing.T) {
	nodes, router := newCluster(t, 3, 2)
	zip := exportPipe(t, "sa-ha")
	if _, err := router.Register(zip, serving.RegisterOptions{}); err != nil {
		t.Fatal(err)
	}
	owners := router.Owners("sa-ha")
	if len(owners) != 2 {
		t.Fatalf("owners %v", owners)
	}

	const workers, perWorker = 4, 100
	var failures atomic0
	var wg sync.WaitGroup
	killed := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := router.Predict(context.Background(), "sa-ha", "a nice product", serving.PredictOptions{}); err != nil {
					failures.add(fmt.Errorf("request %d: %w", i, err))
				}
				if i == perWorker/4 {
					<-killed // everyone sees some post-kill traffic
				}
			}
		}()
	}
	// Kill the primary owner while the load runs.
	time.Sleep(5 * time.Millisecond)
	nodeByID(nodes, owners[0]).srv.Close()
	close(killed)
	wg.Wait()

	if errs := failures.get(); len(errs) != 0 {
		t.Fatalf("%d/%d requests failed despite replication, first: %v",
			len(errs), workers*perWorker, errs[0])
	}
	st := router.Stats()
	if st.Cluster == nil || st.Cluster.Failovers == 0 {
		t.Fatalf("expected failovers in stats: %+v", st.Cluster)
	}
}

// atomic0 collects errors under a mutex (test helper).
type atomic0 struct {
	mu   sync.Mutex
	errs []error
}

func (a *atomic0) add(err error) {
	a.mu.Lock()
	a.errs = append(a.errs, err)
	a.mu.Unlock()
}

func (a *atomic0) get() []error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.errs
}

// --- sentinel mapping and lifecycle ---

func TestRouterSentinelMapping(t *testing.T) {
	nodes, router := newCluster(t, 2, 2)

	// Unknown model: every replica 404s → ErrModelNotFound.
	if _, err := router.Predict(context.Background(), "missing", "x", serving.PredictOptions{}); !errors.Is(err, runtime.ErrModelNotFound) {
		t.Fatalf("unknown model: %v", err)
	}

	zip := exportPipe(t, "sa-map")
	if _, err := router.Register(zip, serving.RegisterOptions{}); err != nil {
		t.Fatal(err)
	}

	// Expired deadline → ErrDeadlineExceeded, no failover.
	_, err := router.Predict(context.Background(), "sa-map", "x",
		serving.PredictOptions{Deadline: time.Now().Add(-time.Second)})
	if !errors.Is(err, runtime.ErrDeadlineExceeded) {
		t.Fatalf("expired deadline: %v", err)
	}

	// Canceled local context → ErrCanceled.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := router.Predict(ctx, "sa-map", "x", serving.PredictOptions{}); !errors.Is(err, runtime.ErrCanceled) {
		t.Fatalf("canceled ctx: %v", err)
	}

	// All replicas down → ErrOverloaded (back off and retry).
	for _, n := range nodes {
		n.srv.Close()
	}
	if _, err := router.Predict(context.Background(), "sa-map", "x", serving.PredictOptions{}); !errors.Is(err, runtime.ErrOverloaded) {
		t.Fatalf("dead fleet: %v", err)
	}
	// And readiness flips once the prober notices.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if router.Ready() != nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := router.Ready(); !errors.Is(err, serving.ErrNotReady) {
		t.Fatalf("dead fleet readiness: %v", err)
	}
}

func TestRouterLifecycle(t *testing.T) {
	_, router := newCluster(t, 3, 2)
	zip := exportPipe(t, "sa-life")
	reg, err := router.Register(zip, serving.RegisterOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Catalog union sees it once.
	models := router.Models()
	if len(models) != 1 || models[0].Name != "sa-life" {
		t.Fatalf("models %+v", models)
	}
	// Resolve through the stable label.
	if name, v, err := router.Resolve("sa-life"); err != nil || name != "sa-life" || v != 1 {
		t.Fatalf("resolve: %s %d %v", name, v, err)
	}
	if _, _, err := router.Resolve("sa-life@nope"); !errors.Is(err, runtime.ErrModelNotFound) {
		t.Fatalf("bad label resolve: %v", err)
	}

	// Second version + label move, replica-consistent.
	reg2, err := router.Register(zip, serving.RegisterOptions{Name: "sa-life"})
	if err != nil {
		t.Fatal(err)
	}
	if reg2.Version != 2 || len(reg2.Nodes) != len(reg.Nodes) {
		t.Fatalf("v2 register %+v (v1 %+v)", reg2, reg)
	}
	if err := router.SetLabel("sa-life", "stable", 2); err != nil {
		t.Fatal(err)
	}
	if _, v, _ := router.Resolve("sa-life"); v != 2 {
		t.Fatalf("post-swap resolve version %d", v)
	}

	// PredictBatch proxies per record.
	preds, err := router.PredictBatch(context.Background(), "sa-life",
		[]string{"a nice product", "awful refund"}, serving.PredictOptions{})
	if err != nil || len(preds) != 2 || len(preds[0]) != 1 {
		t.Fatalf("batch: %v %v", preds, err)
	}

	// Unregister fleet-wide.
	if err := router.Unregister("sa-life"); err != nil {
		t.Fatal(err)
	}
	if err := router.Unregister("sa-life"); !errors.Is(err, runtime.ErrModelNotFound) {
		t.Fatalf("double unregister: %v", err)
	}
	if _, err := router.Predict(context.Background(), "sa-life", "x", serving.PredictOptions{}); !errors.Is(err, runtime.ErrModelNotFound) {
		t.Fatalf("predict after unregister: %v", err)
	}
}

// TestFrontEndOverRouter drives a full front end (HTTP) over the
// routing engine: the seam makes the router indistinguishable from a
// local runtime, /statz shows the cluster view, /readyz is green.
func TestFrontEndOverRouter(t *testing.T) {
	_, router := newCluster(t, 3, 2)
	zip := exportPipe(t, "sa-fe")
	if _, err := router.Register(zip, serving.RegisterOptions{}); err != nil {
		t.Fatal(err)
	}
	fe := frontend.New(router, frontend.Config{})
	pred, _, err := fe.Predict("sa-fe", "a nice product")
	if err != nil || len(pred) != 1 {
		t.Fatalf("front-end predict over router: %v %v", pred, err)
	}
	st := router.Stats()
	if st.Kind != "router" || st.Cluster == nil || len(st.Cluster.Nodes) != 3 || st.Cluster.Forwards == 0 {
		t.Fatalf("router stats %+v", st)
	}
}
