package cluster

import (
	"sync"
	"time"
)

// Breaker states.
const (
	breakerClosed   = "closed"
	breakerOpen     = "open"
	breakerHalfOpen = "half-open"
)

// breaker is a per-node circuit breaker: after threshold consecutive
// node-level failures the circuit opens and the router stops sending
// the node traffic for cooldown, so a dead or drowning node costs one
// connection timeout per cooldown instead of one per request. After
// the cooldown one trial request is let through (half-open); its
// outcome re-closes or re-opens the circuit.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu        sync.Mutex
	failures  int
	openUntil time.Time
	// trialUntil is non-zero while a half-open trial is in flight; if
	// the trial never reports back (wedged connection), a new trial is
	// granted after it — the circuit must not be wedge-able shut.
	trialUntil time.Time
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 2 * time.Second
	}
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether a request may be sent to the node now. In the
// half-open window only one trial is admitted at a time, but a trial
// that never reports back stops blocking after one cooldown.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.failures < b.threshold {
		return true
	}
	if now.Before(b.openUntil) {
		return false
	}
	if !b.trialUntil.IsZero() && now.Before(b.trialUntil) {
		return false
	}
	b.trialUntil = now.Add(b.cooldown)
	return true
}

// success records a served request: the circuit closes.
func (b *breaker) success() {
	b.mu.Lock()
	b.failures = 0
	b.trialUntil = time.Time{}
	b.mu.Unlock()
}

// failure records a node-level failure, opening (or re-opening) the
// circuit once the threshold is reached.
func (b *breaker) failure(now time.Time) {
	b.mu.Lock()
	b.failures++
	b.trialUntil = time.Time{}
	if b.failures >= b.threshold {
		b.openUntil = now.Add(b.cooldown)
	}
	b.mu.Unlock()
}

// state names the current circuit state for the white-box view.
func (b *breaker) state(now time.Time) string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case b.failures < b.threshold:
		return breakerClosed
	case now.Before(b.openUntil):
		return breakerOpen
	default:
		return breakerHalfOpen
	}
}
