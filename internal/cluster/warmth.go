// Warmth map: the router's view of each member's lifecycle state. A
// poll loop reads every member's GET /models (per-model warm / cold /
// loading state) and GET /statz (lifecycle residency vs budget,
// cold-load count) into an immutable per-member snapshot, and the
// placement scorer steers each predict toward the warm replica among
// the K ring owners — PRETZEL's model-density argument only pays off
// in a fleet when requests land where the model is already resident.
package cluster

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"pretzel/internal/frontend"
	"pretzel/internal/runtime"
	"pretzel/internal/serving"
)

// nodeWarmth is one member's lifecycle snapshot, rebuilt atomically
// each poll round (readers never see a half-updated map).
type nodeWarmth struct {
	// models maps bare model name → lifecycle state ("warm", "cold",
	// "loading", "evicting"; "" for models without lifecycle state —
	// plain runtime registrations are always resident).
	models map[string]string
	// residentBytes/budgetBytes mirror the member's lifecycle tier
	// (zero when the member runs without one).
	residentBytes int64
	budgetBytes   int64
	// coldLoads is the member's cumulative disk→RAM load count.
	coldLoads uint64
	// warm/cold count models by state for the cluster residency view.
	warm, cold int
}

// saturated reports residency at or above the member's budget: a cold
// load placed here evicts something else first.
func (w *nodeWarmth) saturated() bool {
	return w.budgetBytes > 0 && w.residentBytes >= w.budgetBytes
}

// warmState reports whether a lifecycle state means the model serves
// from RAM without a disk load. "loading" counts: by the time a routed
// request arrives the single-flight load is the fastest path to a
// result. The empty state is a model without lifecycle management —
// always resident.
func warmState(state string) bool {
	switch state {
	case "", "warm", "loading":
		return true
	default:
		return false
	}
}

// warmthLoop polls every member's warmth on WarmthInterval until the
// router closes. One goroutine; stopped by Close.
func (r *Router) warmthLoop() {
	defer r.bg.Done()
	r.pollWarmth()
	t := time.NewTicker(r.cfg.WarmthInterval)
	defer t.Stop()
	for {
		select {
		case <-r.warmthStop:
			return
		case <-t.C:
			r.pollWarmth()
		}
	}
}

// pollWarmth refreshes every member's snapshot concurrently (bounded
// by OpTimeout per request, like every management-plane call).
func (r *Router) pollWarmth() {
	var wg sync.WaitGroup
	for _, m := range r.reg.all() {
		wg.Add(1)
		go func(m *memberState) {
			defer wg.Done()
			r.pollMemberWarmth(m)
		}(m)
	}
	wg.Wait()
}

// pollMemberWarmth rebuilds one member's warmth snapshot. A member
// that cannot answer keeps its previous snapshot — stale warmth plus
// the health penalty beats flapping to "unknown" on one slow poll.
func (r *Router) pollMemberWarmth(m *memberState) {
	if !m.healthy.Load() {
		return
	}
	resp, err := r.opDo(http.MethodGet, m.Addr+"/models", "", nil)
	if err != nil || resp.StatusCode != http.StatusOK {
		return
	}
	var list frontend.ModelsResponse
	err = json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if err != nil {
		return
	}
	w := &nodeWarmth{models: make(map[string]string, len(list.Models))}
	for _, mi := range list.Models {
		name, _ := runtime.SplitRef(mi.Name)
		w.models[name] = mi.State
		if warmState(mi.State) {
			w.warm++
		} else {
			w.cold++
		}
	}
	// Residency vs budget from /statz (best-effort: a member without a
	// lifecycle tier reports no lifecycle section and scores neutral).
	if resp, err := r.opDo(http.MethodGet, m.Addr+"/statz", "", nil); err == nil {
		var statz struct {
			Lifecycle *serving.LifecycleStats `json:"lifecycle"`
		}
		derr := json.NewDecoder(resp.Body).Decode(&statz)
		resp.Body.Close()
		if derr == nil && statz.Lifecycle != nil {
			w.residentBytes = statz.Lifecycle.ResidentBytes
			w.budgetBytes = statz.Lifecycle.BudgetBytes
			w.coldLoads = statz.Lifecycle.ColdLoads
		}
	}
	m.warmth.Store(w)
}

// placementScore ranks one owner for one model — lower is better, 0 is
// a perfect destination. The scale is lexicographic: availability
// dominates quarantine dominates warmth dominates saturation, so a
// quarantined-but-warm replica (4) always loses to a healthy-cold one
// (2 or 3), and hash order breaks every tie (stable sort).
func (r *Router) placementScore(m *memberState, name string) int {
	s := 0
	if !m.up() {
		s += 8
	}
	if m.isQuarantined(name) {
		s += 4
	}
	if w := m.warmthSnapshot(); w != nil {
		if state, known := w.models[name]; known && !warmState(state) {
			s += 2
			if w.saturated() {
				s++
			}
		}
	}
	return s
}

// routeOrder returns the owners to try, in placement-score order with
// ring order as the tiebreak: warm, healthy, unquarantined replicas
// first, saturated and cold ones later, probed-down ones last — but
// never dropped, so a model whose every owner looks bad is degraded,
// not blacked out (probes and warmth can be stale; the breaker absorbs
// the rest). With HashOnly set, only health reorders (the pre-warmth
// behavior); the warmth map still polls for observability.
func (r *Router) routeOrder(name string, owners []*memberState) []*memberState {
	if len(owners) < 2 {
		return owners
	}
	scored := false
	scores := make([]int, len(owners))
	for i, m := range owners {
		s := 0
		if r.cfg.HashOnly {
			if !m.up() {
				s = 8
			}
		} else {
			s = r.placementScore(m, name)
		}
		scores[i] = s
		scored = scored || s != 0
	}
	if !scored {
		return owners
	}
	ordered := make([]*memberState, len(owners))
	copy(ordered, owners)
	// Insertion sort: owner sets are tiny (K replicas) and stability
	// preserves hash order within a score class.
	for i := 1; i < len(ordered); i++ {
		for j := i; j > 0 && scores[j-1] > scores[j]; j-- {
			scores[j-1], scores[j] = scores[j], scores[j-1]
			ordered[j-1], ordered[j] = ordered[j], ordered[j-1]
		}
	}
	return ordered
}

// noteRouteWarmth classifies where the first attempt of a predict
// landed: on a replica the warmth map knows is cold (a cold-start
// route — what churn storms look like) or anywhere else.
func (r *Router) noteRouteWarmth(m *memberState, name string) {
	if w := m.warmthSnapshot(); w != nil {
		if state, known := w.models[name]; known && !warmState(state) {
			r.coldRouted.Add(1)
			return
		}
	}
	r.warmRouted.Add(1)
}
