package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pretzel/internal/frontend"
	"pretzel/internal/pipeline"
	"pretzel/internal/runtime"
	"pretzel/internal/serving"
)

// Config parameterizes a Router.
type Config struct {
	// Replication is the placement factor K: each model lives on K of
	// the N nodes (0 = 2, clamped to the node count). K=1 is pure
	// sharding; K=N replicates everywhere (the black-box default the
	// placement exists to avoid).
	Replication int
	// VNodes is the consistent-hash ring's virtual-node count per
	// member (0 = DefaultVNodes).
	VNodes int
	// ProbeInterval is the health-check period (0 = 500ms).
	ProbeInterval time.Duration
	// BreakerThreshold consecutive node-level failures open a node's
	// circuit (0 = 3); BreakerCooldown is how long it stays open
	// (0 = 2s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// ForwardTimeout bounds one proxied prediction attempt so a
	// blackholed node costs a failover, not a hung request (0 = 30s; a
	// sooner caller deadline on the context still wins).
	ForwardTimeout time.Duration
	// OpTimeout bounds catalog and lifecycle calls to one node
	// (0 = 5s).
	OpTimeout time.Duration
	// ResolveTTL caches successful model-reference resolutions so the
	// front end's cache-key lookup does not cost a remote catalog read
	// per prediction (0 = 1s; label moves through THIS router
	// invalidate immediately, moves through another router converge
	// within the TTL).
	ResolveTTL time.Duration
	// RetryBudget bounds the total forward attempts one prediction may
	// spend across replicas (0 = 3; 1 disables retries). Breaker-open
	// owners are skipped without burning budget, so the budget is spent
	// on nodes that actually answered — badly.
	RetryBudget int
	// RetryBackoff is the base of the jittered exponential backoff
	// slept between attempts (0 = 5ms), capped at RetryBackoffMax
	// (0 = 250ms) and always by the request deadline: a retry that
	// cannot fit its backoff inside the deadline fails with
	// ErrDeadlineExceeded instead of sleeping past it.
	RetryBackoff    time.Duration
	RetryBackoffMax time.Duration
	// HedgeDelay, when > 0, arms hedged predictions: if the primary
	// replica has not answered after this delay, a backup request
	// fires to the next allowed replica and the first response wins
	// (the loser is canceled, its outcome never feeds the breakers).
	// Tail-latency insurance: set it near the fault-free p99.
	HedgeDelay time.Duration
	// WarmthInterval is the warmth-map poll period: each member's
	// lifecycle state (GET /models) and residency-vs-budget (/statz)
	// feed placement scoring (0 = 1s; negative disables the poll loop —
	// placement degrades to health + hash order).
	WarmthInterval time.Duration
	// HashOnly disables the placement plane: owners are tried in pure
	// ring order (health still reorders) and membership changes do NOT
	// pre-warm — the pre-placement router, kept as the baseline the
	// churn experiment measures against. The warmth map keeps polling
	// for observability, so both modes report the same counters.
	HashOnly bool
	// ProbeFailures is the health-probe hysteresis: a member is marked
	// down only after this many CONSECUTIVE failed probe rounds, so one
	// slow probe does not flap routing or trigger a rebalance (0 = 2;
	// 1 disables damping).
	ProbeFailures int
	// PrewarmConcurrency caps concurrent pre-warm loads during a
	// rebalance (0 = 2); PrewarmStagger is slept between launches so a
	// membership change warms the fleet gradually instead of stampeding
	// every disk at once (0 = 25ms; negative disables the stagger).
	PrewarmConcurrency int
	PrewarmStagger     time.Duration
	// Client is the HTTP client used for proxying and probes (nil = a
	// client with pooled connections and no global timeout — request
	// bounds come from the per-call timeouts above).
	Client *http.Client
}

// Router is the cluster serving engine: it implements serving.Engine
// by proxying every operation to the owner nodes the consistent-hash
// ring places a model on. Failures at the node level (connection
// errors, 5xx, shed 429s) fail over to the next replica and feed the
// node's circuit breaker; caller-level failures (bad input, expired
// deadline) return immediately. Remote HTTP statuses are mapped back
// to the runtime's typed sentinels, so a front end over a Router is
// indistinguishable from one over a local runtime.
type Router struct {
	cfg Config

	reg  *registry
	mu   sync.RWMutex // guards ring (static today, dynamic tomorrow)
	ring *Ring

	// resolved caches successful reference resolutions for ResolveTTL.
	resolveMu sync.Mutex
	resolved  map[string]resolveEntry

	forwards  atomic.Uint64
	failovers atomic.Uint64
	retries   atomic.Uint64
	hedges    atomic.Uint64
	hedgeWins atomic.Uint64

	// Placement-plane counters: predicts routed to known-warm vs
	// known-cold replicas, membership changes absorbed, and pre-warm
	// load outcomes.
	warmRouted  atomic.Uint64
	coldRouted  atomic.Uint64
	rebalances  atomic.Uint64
	prewarms    atomic.Uint64
	prewarmErrs atomic.Uint64

	// warmthStop ends the warmth poll loop; bg tracks it plus the
	// rebalancer's background pre-warm goroutines so Close leaves zero
	// goroutines behind.
	warmthStop chan struct{}
	bg         sync.WaitGroup

	closed atomic.Bool
}

// resolveEntry is one cached reference resolution.
type resolveEntry struct {
	name    string
	version int
	expires time.Time
}

var _ serving.Engine = (*Router)(nil)

// NewRouter builds a routing engine over a static member set.
func NewRouter(members []Member, cfg Config) (*Router, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: no members")
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 2
	}
	// Replication is deliberately NOT clamped to the initial member
	// count: membership is dynamic, and Owners clamps per-lookup.
	if cfg.ForwardTimeout <= 0 {
		cfg.ForwardTimeout = 30 * time.Second
	}
	if cfg.OpTimeout <= 0 {
		cfg.OpTimeout = 5 * time.Second
	}
	if cfg.ResolveTTL <= 0 {
		cfg.ResolveTTL = time.Second
	}
	if cfg.RetryBudget <= 0 {
		cfg.RetryBudget = 3
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 5 * time.Millisecond
	}
	if cfg.RetryBackoffMax <= 0 {
		cfg.RetryBackoffMax = 250 * time.Millisecond
	}
	if cfg.WarmthInterval == 0 {
		cfg.WarmthInterval = time.Second
	}
	if cfg.PrewarmConcurrency <= 0 {
		cfg.PrewarmConcurrency = 2
	}
	if cfg.PrewarmStagger == 0 {
		cfg.PrewarmStagger = 25 * time.Millisecond
	}
	if cfg.Client == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConnsPerHost = 128
		cfg.Client = &http.Client{Transport: tr}
	}
	reg, err := newRegistry(members, cfg.Client, cfg.ProbeInterval, cfg.ProbeFailures, cfg.BreakerThreshold, cfg.BreakerCooldown)
	if err != nil {
		return nil, err
	}
	ring := NewRing(cfg.VNodes)
	for _, m := range reg.all() {
		ring.Add(m.ID)
	}
	rt := &Router{
		cfg:        cfg,
		reg:        reg,
		ring:       ring,
		resolved:   make(map[string]resolveEntry),
		warmthStop: make(chan struct{}),
	}
	// Wire the down-callback before the probe loop starts: a member that
	// fails its first probes must still trigger co-owner pre-warming.
	reg.onDown = rt.onMemberDown
	reg.start()
	if cfg.WarmthInterval > 0 {
		rt.bg.Add(1)
		go rt.warmthLoop()
	}
	return rt, nil
}

// Owners returns the member IDs owning a model reference, primary
// first (exported for placement-aware tooling and tests).
func (r *Router) Owners(ref string) []string {
	name, _ := runtime.SplitRef(ref)
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.ring.Owners(name, r.cfg.Replication)
}

// owners resolves the owner member states for a model reference.
func (r *Router) owners(ref string) []*memberState {
	ids := r.Owners(ref)
	out := make([]*memberState, 0, len(ids))
	for _, id := range ids {
		if m := r.reg.get(id); m != nil {
			out = append(out, m)
		}
	}
	return out
}

// nodeErr is a retryable failure: the request may succeed on another
// replica. fault marks failures that indict the node itself (transport
// errors, 5xx crashes) and feed its circuit breaker; a 404 (replica
// without the model) or a deliberate 429/503 shed is retryable but
// NOT a fault — junk model names and overload must never open the
// breakers of healthy nodes.
type nodeErr struct {
	err   error
	fault bool
}

func (e nodeErr) Error() string { return e.err.Error() }
func (e nodeErr) Unwrap() error { return e.err }

// mapRemoteStatus folds a node's HTTP status back into the typed
// sentinels — the "local admission mapping" that keeps the seam's
// error contract transport-free. Retryable failures come back wrapped
// in nodeErr; caller-level failures (spent deadline, bad input) are
// final.
func mapRemoteStatus(code int, msg string) error {
	switch code {
	case http.StatusNotFound:
		// The replica may simply not hold the model (registration
		// raced, partial placement): another owner might.
		return nodeErr{err: fmt.Errorf("%w: %s", runtime.ErrModelNotFound, msg)}
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		// Shed or draining node: deliberate, the node is doing its job.
		return nodeErr{err: fmt.Errorf("%w: %s", runtime.ErrOverloaded, msg)}
	case http.StatusGatewayTimeout:
		// The request's budget is spent; retrying cannot help.
		return fmt.Errorf("%w: %s", runtime.ErrDeadlineExceeded, msg)
	case http.StatusBadRequest:
		return fmt.Errorf("%w: %s", runtime.ErrInvalidInput, msg)
	default:
		return nodeErr{err: fmt.Errorf("cluster: node status %d: %s", code, msg), fault: true}
	}
}

// finalErr shapes the error returned after every replica failed. A
// typed sentinel from the last replica passes through; pure transport
// failures collapse into ErrOverloaded (the caller should back off and
// retry — by then the health checker has usually rerouted).
func finalErr(model string, attempts int, last error) error {
	if last == nil {
		return fmt.Errorf("%w: all %d replicas of %q have open circuit breakers", runtime.ErrOverloaded, attempts, model)
	}
	for _, sentinel := range []error{
		runtime.ErrModelNotFound, runtime.ErrOverloaded, runtime.ErrDeadlineExceeded,
		runtime.ErrCanceled, runtime.ErrClosed, runtime.ErrInvalidInput,
	} {
		if errors.Is(last, sentinel) {
			return last
		}
	}
	return fmt.Errorf("%w: all %d replicas of %q failed: %v", runtime.ErrOverloaded, attempts, model, last)
}

// noteOutcome feeds one attempt's outcome to the member's circuit
// breaker. Cancellation is breaker-neutral: a hedge loser canceled
// because its sibling won (or a caller who walked away) says nothing
// about the node's health, so it must neither trip nor reset the
// breaker.
func (r *Router) noteOutcome(m *memberState, err error) {
	if err == nil {
		m.br.success()
		return
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, runtime.ErrCanceled) {
		return
	}
	var ne nodeErr
	if !errors.As(err, &ne) {
		// Caller-level failure (bad input, spent deadline): final for
		// the request, and not the node's fault.
		m.br.success()
		return
	}
	if ne.fault {
		m.br.failure(time.Now())
		m.failures.Add(1)
		m.lastErr.Store(ne.err.Error())
	} else {
		m.br.success()
	}
}

// backoff sleeps the jittered exponential backoff before retry
// `attempt` (1-based), capped at RetryBackoffMax and by the request
// deadline: when the sleep cannot fit, it fails fast with
// ErrDeadlineExceeded instead of burning the remaining budget asleep.
func (r *Router) backoff(ctx context.Context, attempt int, deadline time.Time) error {
	d := r.cfg.RetryBackoff << (attempt - 1)
	if d > r.cfg.RetryBackoffMax || d <= 0 {
		d = r.cfg.RetryBackoffMax
	}
	// Full jitter in [d/2, d): retrying replicas of one overloaded
	// model must not re-converge in lockstep.
	d = d/2 + time.Duration(rand.Int64N(int64(d/2)+1))
	if dl, ok := ctx.Deadline(); ok && (deadline.IsZero() || dl.Before(deadline)) {
		deadline = dl
	}
	if !deadline.IsZero() && time.Until(deadline) < d {
		return fmt.Errorf("%w: retry backoff (%v) exceeds remaining request budget", runtime.ErrDeadlineExceeded, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return serving.MapCtxErr(ctx.Err())
	}
}

// Predict proxies one prediction to the model's owners under a
// per-request retry budget: attempts rotate across replicas with
// jittered exponential backoff between them (failover is attempt #2 on
// the next replica), node-level failures feed the breakers, and
// caller-level failures return immediately. With HedgeDelay armed,
// each attempt may fire a backup request to the next allowed replica
// when the primary is slow — first response wins, the loser is
// canceled.
func (r *Router) Predict(ctx context.Context, model, input string, opts serving.PredictOptions) ([]float32, error) {
	if r.closed.Load() {
		return nil, runtime.ErrClosed
	}
	owners := r.owners(model)
	if len(owners) == 0 {
		return nil, fmt.Errorf("%w: no cluster members", serving.ErrNotReady)
	}
	name, _ := runtime.SplitRef(model)
	owners = r.routeOrder(name, owners)
	// next rotates through the route order so consecutive attempts (and
	// the hedge backup) land on different replicas whenever possible.
	next := 0
	pick := func() *memberState {
		for i := 0; i < len(owners); i++ {
			m := owners[(next+i)%len(owners)]
			if m.br.allow(time.Now()) {
				next = (next + i + 1) % len(owners)
				return m
			}
		}
		return nil
	}
	var (
		lastErr  error
		prev     *memberState
		attempts int
	)
	for attempts = 0; attempts < r.cfg.RetryBudget; attempts++ {
		if err := ctx.Err(); err != nil {
			return nil, serving.MapCtxErr(err)
		}
		m := pick()
		if m == nil {
			break
		}
		if attempts == 0 {
			r.noteRouteWarmth(m, name)
		}
		if attempts > 0 {
			r.retries.Add(1)
			if m != prev {
				r.failovers.Add(1)
			}
			if err := r.backoff(ctx, attempts, opts.Deadline); err != nil {
				if lastErr != nil {
					return nil, fmt.Errorf("%w (last replica error: %v)", err, lastErr)
				}
				return nil, err
			}
		}
		var backup *memberState
		if r.cfg.HedgeDelay > 0 && len(owners) > 1 {
			if b := pick(); b != nil && b != m {
				backup = b
			}
		}
		prev = m
		pred, err := r.attemptHedged(ctx, m, backup, model, input, opts)
		if err == nil {
			return pred, nil
		}
		var ne nodeErr
		if !errors.As(err, &ne) {
			return nil, err
		}
		lastErr = ne.err
	}
	return nil, finalErr(model, attempts, lastErr)
}

// attemptHedged runs one attempt: the primary forward, plus — when a
// backup replica is available and the primary has not answered within
// HedgeDelay — a hedged backup forward. The first success wins and
// cancels the other; each in-flight forward does its own breaker
// bookkeeping (cancellation is breaker-neutral, see noteOutcome). A
// final (caller-level) error from either side wins over waiting.
func (r *Router) attemptHedged(ctx context.Context, primary, backup *memberState, model, input string, opts serving.PredictOptions) ([]float32, error) {
	if backup == nil || r.cfg.HedgeDelay <= 0 {
		pred, err := r.forwardPredict(ctx, primary, model, input, opts)
		r.noteOutcome(primary, err)
		return pred, err
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type result struct {
		pred   []float32
		err    error
		hedged bool
	}
	// Buffered to the maximum number of forwards: the loser's goroutine
	// must be able to deliver (and do its breaker bookkeeping) after
	// this function returned.
	ch := make(chan result, 2)
	launch := func(m *memberState, hedged bool) {
		pred, err := r.forwardPredict(hctx, m, model, input, opts)
		r.noteOutcome(m, err)
		ch <- result{pred: pred, err: err, hedged: hedged}
	}
	go launch(primary, false)
	timer := time.NewTimer(r.cfg.HedgeDelay)
	defer timer.Stop()
	inflight, hedgeFired := 1, false
	var lastErr error
	for {
		select {
		case <-timer.C:
			if !hedgeFired {
				hedgeFired = true
				inflight++
				r.hedges.Add(1)
				go launch(backup, true)
			}
		case res := <-ch:
			if res.err == nil {
				if res.hedged {
					r.hedgeWins.Add(1)
				}
				return res.pred, nil
			}
			var ne nodeErr
			if !errors.As(res.err, &ne) {
				// Caller-level: final — no point waiting on the sibling.
				return nil, res.err
			}
			lastErr = res.err
			inflight--
			if inflight == 0 {
				// Both sides failed — or the primary failed before the
				// hedge delay, in which case the failure goes straight
				// to the outer retry loop instead of waiting out the
				// timer.
				return nil, lastErr
			}
		}
	}
}

// PredictBatch proxies a flushed batch. The wire protocol is
// per-record, so records fan out concurrently to the same owner set;
// the first error fails the batch (matching the local engine's
// all-or-nothing batch contract).
func (r *Router) PredictBatch(ctx context.Context, model string, inputs []string, opts serving.PredictOptions) ([][]float32, error) {
	preds := make([][]float32, len(inputs))
	errs := make([]error, len(inputs))
	sem := make(chan struct{}, 16)
	var wg sync.WaitGroup
	for i, in := range inputs {
		wg.Add(1)
		go func(i int, in string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			preds[i], errs[i] = r.Predict(ctx, model, in, opts)
		}(i, in)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return preds, nil
}

// forwardPredict POSTs one /predict to a node and maps the outcome.
// Each attempt is bounded by ForwardTimeout (the caller's sooner
// context deadline wins), so a blackholed node costs one failover.
func (r *Router) forwardPredict(ctx context.Context, m *memberState, model, input string, opts serving.PredictOptions) ([]float32, error) {
	m.forwards.Add(1)
	r.forwards.Add(1)
	body := frontend.Request{Model: model, Input: input}
	if opts.Priority == runtime.PriorityHigh {
		body.Priority = "high"
	}
	if !opts.Deadline.IsZero() {
		body.DeadlineUnixNS = opts.Deadline.UnixNano()
	}
	raw, _ := json.Marshal(body)
	fctx, cancel := context.WithTimeout(ctx, r.cfg.ForwardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(fctx, http.MethodPost, m.Addr+"/predict", bytes.NewReader(raw))
	if err != nil {
		return nil, nodeErr{err: err, fault: true}
	}
	req.Header.Set("Content-Type", "application/json")
	// Propagate the remaining request budget as a relative duration —
	// clock-skew tolerant where an absolute timestamp is not. Each
	// retry or hedge recomputes it, so the budget a node sees shrinks
	// as the request ages.
	deadline := opts.Deadline
	if dl, ok := ctx.Deadline(); ok && (deadline.IsZero() || dl.Before(deadline)) {
		deadline = dl
	}
	if !deadline.IsZero() {
		req.Header.Set(frontend.DeadlineHeader, strconv.FormatInt(int64(time.Until(deadline)), 10))
	}
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			// The CALLER's context expired: final, not the node's fault.
			return nil, serving.MapCtxErr(ctxErr)
		}
		// Transport failure or forward timeout: the node's fault.
		return nil, nodeErr{err: fmt.Errorf("node %s: %w", m.ID, err), fault: true}
	}
	defer resp.Body.Close()
	var out frontend.Response
	if derr := json.NewDecoder(resp.Body).Decode(&out); derr != nil && resp.StatusCode == http.StatusOK {
		return nil, nodeErr{err: fmt.Errorf("node %s: decoding response: %w", m.ID, derr), fault: true}
	}
	if resp.StatusCode != http.StatusOK {
		return nil, mapRemoteStatus(resp.StatusCode, fmt.Sprintf("node %s: %s", m.ID, out.Error))
	}
	return out.Prediction, nil
}

// --- lifecycle (forwarded to owners) ---

// Register places a model on its K owner nodes. With no explicit
// version the primary assigns one and the replicas install the same
// version, so the replica set stays consistent. At least one replica
// must accept; partial placements are reported in the result's Nodes.
func (r *Router) Register(zip []byte, opts serving.RegisterOptions) (serving.RegisterResult, error) {
	if r.closed.Load() {
		return serving.RegisterResult{}, runtime.ErrClosed
	}
	name := opts.Name
	if name == "" {
		// Peek into the upload for the placement key (and fail garbage
		// early, before it travels the fleet).
		p, err := pipeline.ImportBytes(zip)
		if err != nil {
			return serving.RegisterResult{}, fmt.Errorf("%w: importing: %v", serving.ErrBadModel, err)
		}
		name, _ = runtime.SplitRef(p.Name)
	}
	owners := r.owners(name)
	if len(owners) == 0 {
		return serving.RegisterResult{}, fmt.Errorf("%w: no cluster members", serving.ErrNotReady)
	}
	var (
		result  serving.RegisterResult
		nodes   []string
		lastErr error
		version = opts.Version
	)
	for _, m := range owners {
		reg, err := r.forwardRegister(m, zip, name, version, opts.Label)
		if err != nil {
			lastErr = err
			m.lastErr.Store(err.Error())
			continue
		}
		if len(nodes) == 0 {
			result = reg
			// Pin the replicas to the version the primary assigned.
			version = reg.Version
		}
		nodes = append(nodes, m.ID)
	}
	if len(nodes) == 0 {
		return serving.RegisterResult{}, lastErr
	}
	r.invalidateResolved(name)
	result.Nodes = nodes
	return result, nil
}

// opDo runs one bounded management-plane request against a node: no
// node may hang a catalog or lifecycle call past OpTimeout.
func (r *Router) opDo(method, url, contentType string, body []byte) (*http.Response, error) {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.OpTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	// Read the (bounded) body inside the timeout and hand back a
	// replayable response. The bound matches the default upload limit:
	// zip exports travel through here during rebalances.
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	resp.Body.Close()
	resp.Body = io.NopCloser(bytes.NewReader(raw))
	return resp, nil
}

func (r *Router) forwardRegister(m *memberState, zip []byte, name string, version int, label string) (serving.RegisterResult, error) {
	q := url.Values{}
	if name != "" {
		q.Set("name", name)
	}
	if version > 0 {
		q.Set("version", strconv.Itoa(version))
	}
	if label != "" {
		q.Set("label", label)
	}
	u := m.Addr + "/models"
	if enc := q.Encode(); enc != "" {
		u += "?" + enc
	}
	resp, err := r.opDo(http.MethodPost, u, "application/zip", zip)
	if err != nil {
		// Transport failure: the fleet is (partially) unreachable — a
		// retryable 503, never a bogus "conflict".
		return serving.RegisterResult{}, fmt.Errorf("%w: node %s: %v", serving.ErrNotReady, m.ID, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	switch resp.StatusCode {
	case http.StatusCreated:
		var reg serving.RegisterResult
		if err := json.Unmarshal(raw, &reg); err != nil {
			return serving.RegisterResult{}, fmt.Errorf("node %s: decoding register response: %w", m.ID, err)
		}
		return reg, nil
	case http.StatusBadRequest:
		return serving.RegisterResult{}, fmt.Errorf("%w: node %s: %s", serving.ErrBadModel, m.ID, bodyError(raw))
	default:
		// Conflicts (duplicate version) pass through untyped → HTTP 409.
		return serving.RegisterResult{}, fmt.Errorf("node %s: status %d: %s", m.ID, resp.StatusCode, bodyError(raw))
	}
}

func bodyError(raw []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(raw))
}

// Unregister removes a model reference fleet-wide. Every node is
// asked (membership may have changed since placement); missing-there
// is not an error as long as some node held it.
func (r *Router) Unregister(ref string) error {
	name, _ := runtime.SplitRef(ref)
	defer r.invalidateResolved(name)
	members := r.reg.all()
	// Concurrent fan-out: a fleet with hung nodes costs one OpTimeout,
	// not one per node.
	results := make([]error, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func(i int, m *memberState) {
			defer wg.Done()
			resp, err := r.opDo(http.MethodDelete, m.Addr+"/models/"+url.PathEscape(ref), "", nil)
			if err != nil {
				results[i] = fmt.Errorf("node %s: %w", m.ID, err)
				return
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
			case http.StatusNotFound:
				// Not placed here: fine.
				results[i] = errNotPlaced
			default:
				results[i] = fmt.Errorf("node %s: status %d: %s", m.ID, resp.StatusCode, bodyError(raw))
			}
		}(i, m)
	}
	wg.Wait()
	removed := 0
	var lastErr error
	for _, err := range results {
		switch {
		case err == nil:
			removed++
		case errors.Is(err, errNotPlaced):
		default:
			lastErr = err
		}
	}
	if removed == 0 {
		if lastErr != nil {
			return lastErr
		}
		return fmt.Errorf("%w: %q on any node", runtime.ErrModelNotFound, ref)
	}
	return nil
}

// errNotPlaced marks a node that never held the reference (soft miss).
var errNotPlaced = errors.New("cluster: not placed on node")

// SetLabel moves a label on every replica holding the model.
func (r *Router) SetLabel(name, label string, version int) error {
	defer r.invalidateResolved(name)
	body, _ := json.Marshal(frontend.LabelRequest{Label: label, Version: version})
	owners := r.owners(name)
	results := make([]error, len(owners))
	var wg sync.WaitGroup
	for i, m := range owners {
		wg.Add(1)
		go func(i int, m *memberState) {
			defer wg.Done()
			resp, err := r.opDo(http.MethodPost, m.Addr+"/models/"+url.PathEscape(name)+"/labels", "application/json", body)
			if err != nil {
				results[i] = fmt.Errorf("node %s: %w", m.ID, err)
				return
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				results[i] = mapRemoteStatus(resp.StatusCode, fmt.Sprintf("node %s: %s", m.ID, bodyError(raw)))
			}
		}(i, m)
	}
	wg.Wait()
	moved := 0
	var lastErr error
	for _, err := range results {
		if err == nil {
			moved++
		} else {
			lastErr = err
		}
	}
	if moved == 0 {
		if lastErr != nil {
			return lastErr
		}
		return fmt.Errorf("%w: %q", runtime.ErrModelNotFound, name)
	}
	return nil
}

// --- catalog (aggregated across nodes) ---

// Models lists the fleet's models: the union over nodes, each model
// reported by the first replica that answered (per-replica load is
// visible through the node's own /statz).
func (r *Router) Models() []runtime.ModelInfo {
	seen := make(map[string]runtime.ModelInfo)
	for _, m := range r.reg.all() {
		if !m.healthy.Load() {
			continue
		}
		resp, err := r.opDo(http.MethodGet, m.Addr+"/models", "", nil)
		if err != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		var list frontend.ModelsResponse
		err = json.NewDecoder(resp.Body).Decode(&list)
		resp.Body.Close()
		if err != nil {
			continue
		}
		for _, mi := range list.Models {
			if _, dup := seen[mi.Name]; !dup {
				seen[mi.Name] = mi
			}
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]runtime.ModelInfo, 0, len(names))
	for _, n := range names {
		out = append(out, seen[n])
	}
	return out
}

// ModelInfo returns one model's white-box view from the first owner
// replica that answers.
func (r *Router) ModelInfo(name string) (runtime.ModelInfo, error) {
	var lastErr error
	for _, m := range r.routeOrder(name, r.owners(name)) {
		resp, err := r.opDo(http.MethodGet, m.Addr+"/models/"+url.PathEscape(name), "", nil)
		if err != nil {
			lastErr = fmt.Errorf("node %s: %w", m.ID, err)
			continue
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			lastErr = mapRemoteStatus(resp.StatusCode, fmt.Sprintf("node %s: %s", m.ID, bodyError(raw)))
			continue
		}
		var info runtime.ModelInfo
		if err := json.Unmarshal(raw, &info); err != nil {
			lastErr = err
			continue
		}
		return info, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("%w: %q", runtime.ErrModelNotFound, name)
	}
	return runtime.ModelInfo{}, lastErr
}

// invalidateResolved drops every cached resolution of one model name
// (lifecycle operations through this router take effect immediately;
// moves through another router converge within ResolveTTL).
func (r *Router) invalidateResolved(name string) {
	r.resolveMu.Lock()
	for ref := range r.resolved {
		if n, _ := runtime.SplitRef(ref); n == name {
			delete(r.resolved, ref)
		}
	}
	r.resolveMu.Unlock()
}

// Resolve mirrors the runtime's reference semantics against the
// owners' catalog view: bare names resolve through the "stable" label
// (or a single installed version), explicit versions and labels
// resolve directly, and nothing ever falls back to "latest".
// Successful resolutions are cached for ResolveTTL so the front end's
// per-request cache-key lookup does not cost a remote catalog read per
// prediction.
func (r *Router) Resolve(ref string) (string, int, error) {
	now := time.Now()
	r.resolveMu.Lock()
	if e, ok := r.resolved[ref]; ok && now.Before(e.expires) {
		r.resolveMu.Unlock()
		return e.name, e.version, nil
	}
	r.resolveMu.Unlock()
	name, version, err := r.resolveRemote(ref)
	if err != nil {
		return "", 0, err
	}
	r.resolveMu.Lock()
	r.resolved[ref] = resolveEntry{name: name, version: version, expires: now.Add(r.cfg.ResolveTTL)}
	r.resolveMu.Unlock()
	return name, version, nil
}

func (r *Router) resolveRemote(ref string) (string, int, error) {
	name, rest := runtime.SplitRef(ref)
	info, err := r.ModelInfo(name)
	if err != nil {
		return "", 0, err
	}
	has := func(v int) bool {
		for _, vi := range info.Versions {
			if vi.Version == v {
				return true
			}
		}
		return false
	}
	var v int
	switch {
	case rest == "":
		if lv, ok := info.Labels[runtime.LabelStable]; ok {
			v = lv
		} else if len(info.Versions) == 1 {
			v = info.Versions[0].Version
		} else {
			return "", 0, fmt.Errorf("%w: %q has no %q label; reference an explicit version or label", runtime.ErrModelNotFound, name, runtime.LabelStable)
		}
	default:
		if n, err := strconv.Atoi(strings.TrimPrefix(rest, "v")); err == nil && n > 0 {
			v = n
		} else if lv, ok := info.Labels[rest]; ok {
			v = lv
		} else {
			return "", 0, fmt.Errorf("%w: %q has no version or label %q", runtime.ErrModelNotFound, name, rest)
		}
	}
	if !has(v) {
		return "", 0, fmt.Errorf("%w: %q has no version %d", runtime.ErrModelNotFound, name, v)
	}
	return name, v, nil
}

// --- ops ---

// Stats snapshots the routing tier: placement configuration, global
// forwarding counters and every node's health, breaker and traffic.
func (r *Router) Stats() serving.Stats {
	now := time.Now()
	r.mu.RLock()
	vnodes := r.ring.VNodes()
	r.mu.RUnlock()
	cs := &serving.ClusterStats{
		Replication: r.cfg.Replication,
		VNodes:      vnodes,
		Forwards:    r.forwards.Load(),
		Failovers:   r.failovers.Load(),
		Retries:     r.retries.Load(),
		Hedges:      r.hedges.Load(),
		HedgeWins:   r.hedgeWins.Load(),
		WarmRouted:  r.warmRouted.Load(),
		ColdRouted:  r.coldRouted.Load(),
		Rebalances:  r.rebalances.Load(),
		Prewarms:    r.prewarms.Load(),
		PrewarmErrs: r.prewarmErrs.Load(),
	}
	members := r.reg.all()
	sort.Slice(members, func(i, j int) bool { return members[i].ID < members[j].ID })
	for _, m := range members {
		lastErr, _ := m.lastErr.Load().(string)
		ns := serving.NodeStats{
			ID:       m.ID,
			Addr:     m.Addr,
			Healthy:  m.healthy.Load(),
			Ready:    m.ready.Load(),
			Breaker:  m.br.state(now),
			Forwards: m.forwards.Load(),
			Failures: m.failures.Load(),
			LastErr:  lastErr,
		}
		if q, _ := m.quarantined.Load().(map[string]bool); len(q) > 0 {
			names := make([]string, 0, len(q))
			for name := range q {
				names = append(names, name)
			}
			sort.Strings(names)
			ns.Quarantined = names
		}
		if w := m.warmthSnapshot(); w != nil {
			ns.WarmModels = w.warm
			ns.ColdModels = w.cold
			ns.ResidentBytes = w.residentBytes
			ns.BudgetBytes = w.budgetBytes
			ns.ColdLoads = w.coldLoads
			ns.Saturated = w.saturated()
			cs.ResidentBytes += w.residentBytes
			cs.BudgetBytes += w.budgetBytes
			cs.ColdLoads += w.coldLoads
		}
		cs.Nodes = append(cs.Nodes, ns)
	}
	return serving.Stats{Kind: "router", Cluster: cs}
}

// Ready reports nil when at least one node is healthy and ready.
func (r *Router) Ready() error {
	if r.closed.Load() {
		return fmt.Errorf("%w: router closed", serving.ErrNotReady)
	}
	for _, m := range r.reg.all() {
		if m.healthy.Load() && m.ready.Load() {
			return nil
		}
	}
	return fmt.Errorf("%w: no healthy cluster node", serving.ErrNotReady)
}

// Close stops the health checker, the warmth poll and any background
// pre-warming. Nodes are not touched: the router is a stateless tier
// over them. Order matters: the registry closes before bg.Wait because
// onDown (which bg.Adds) runs inside registry-tracked probe goroutines.
func (r *Router) Close() error {
	if !r.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(r.warmthStop)
	r.reg.close()
	r.bg.Wait()
	r.cfg.Client.CloseIdleConnections()
	return nil
}
