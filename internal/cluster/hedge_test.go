package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"pretzel/internal/frontend"
	"pretzel/internal/runtime"
	"pretzel/internal/serving"
	"pretzel/internal/store"
)

// slowEngine delays Predict by a settable duration — a degraded node
// whose slowness the router's hedging must mask.
type slowEngine struct {
	serving.Engine
	delayNS atomic.Int64
}

func (s *slowEngine) Predict(ctx context.Context, model, input string, opts serving.PredictOptions) ([]float32, error) {
	if d := s.delayNS.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	return s.Engine.Predict(ctx, model, input, opts)
}

// newHedgeCluster starts n nodes whose engines can be slowed, and a
// router with the given extra config over them.
func newHedgeCluster(t testing.TB, n int, cfg Config) ([]*slowEngine, *Router) {
	t.Helper()
	engines := make([]*slowEngine, n)
	members := make([]Member, n)
	for i := range engines {
		rt := runtime.New(store.New(), runtime.Config{Executors: 2})
		t.Cleanup(rt.Close)
		engines[i] = &slowEngine{Engine: serving.NewLocal(rt, nil)}
		srv := httptest.NewServer(frontend.New(engines[i], frontend.Config{}))
		t.Cleanup(srv.Close)
		members[i] = Member{ID: fmt.Sprintf("node%d", i), Addr: srv.URL}
	}
	if cfg.Replication == 0 {
		cfg.Replication = n
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 50 * time.Millisecond
	}
	r, err := NewRouter(members, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return engines, r
}

// TestHedgedPredictMasksSlowOwner slows a model's primary owner far
// past the hedge delay: the backup request to the replica must win,
// keeping the routed predict fast and successful.
func TestHedgedPredictMasksSlowOwner(t *testing.T) {
	engines, r := newHedgeCluster(t, 2, Config{HedgeDelay: 25 * time.Millisecond})
	if _, err := r.Register(exportPipe(t, "m"), serving.RegisterOptions{}); err != nil {
		t.Fatal(err)
	}
	owners := r.Owners("m")
	if len(owners) != 2 {
		t.Fatalf("owners = %v, want both nodes", owners)
	}
	// Slow the primary (first in route order) by far more than the
	// hedge delay.
	var primary int
	if _, err := fmt.Sscanf(owners[0], "node%d", &primary); err != nil {
		t.Fatalf("unexpected owner ID %q", owners[0])
	}
	engines[primary].delayNS.Store(int64(800 * time.Millisecond))

	t0 := time.Now()
	pred, err := r.Predict(context.Background(), "m", "a nice product", serving.PredictOptions{})
	elapsed := time.Since(t0)
	if err != nil {
		t.Fatalf("hedged predict failed: %v", err)
	}
	if len(pred) == 0 {
		t.Fatal("hedged predict returned no prediction")
	}
	if elapsed >= 500*time.Millisecond {
		t.Fatalf("hedged predict took %v — the backup never masked the slow primary", elapsed)
	}
	cs := r.Stats().Cluster
	if cs.Hedges == 0 || cs.HedgeWins == 0 {
		t.Fatalf("cluster stats hedges=%d hedgeWins=%d, want both > 0", cs.Hedges, cs.HedgeWins)
	}
	// The slow node answered late with a success (its request was
	// canceled, which is breaker-neutral): no breaker may have opened.
	for _, ns := range cs.Nodes {
		if ns.Breaker != breakerClosed {
			t.Fatalf("node %s breaker %q after hedging, want closed", ns.ID, ns.Breaker)
		}
	}
}

// shedEngine fails every Predict with ErrOverloaded — a node that
// sheds whatever it is asked (HTTP 429, retryable, not its fault).
type shedEngine struct{ serving.Engine }

func (s *shedEngine) Predict(context.Context, string, string, serving.PredictOptions) ([]float32, error) {
	return nil, runtime.ErrOverloaded
}

// TestRetryBackoffCappedByDeadline exhausts the retry budget against a
// permanently shedding node under a tight request deadline: the
// backoff must fail fast with ErrDeadlineExceeded rather than sleep
// past the budget — and shed 429s never trip the breaker.
func TestRetryBackoffCappedByDeadline(t *testing.T) {
	rt := runtime.New(store.New(), runtime.Config{Executors: 1})
	t.Cleanup(rt.Close)
	srv := httptest.NewServer(frontend.New(&shedEngine{Engine: serving.NewLocal(rt, nil)}, frontend.Config{}))
	t.Cleanup(srv.Close)
	r, err := NewRouter([]Member{{ID: "node0", Addr: srv.URL}}, Config{
		Replication:   1,
		ProbeInterval: 50 * time.Millisecond,
		RetryBudget:   4,
		RetryBackoff:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })

	t0 := time.Now()
	_, err = r.Predict(context.Background(), "m", "x", serving.PredictOptions{
		Deadline: t0.Add(80 * time.Millisecond),
	})
	elapsed := time.Since(t0)
	if !errors.Is(err, runtime.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded from deadline-capped backoff", err)
	}
	if elapsed > time.Second {
		t.Fatalf("deadline-capped retry took %v — it slept past the request budget", elapsed)
	}
	// Budget exhaustion by shedding is not the node's fault.
	for _, ns := range r.Stats().Cluster.Nodes {
		if ns.Breaker != breakerClosed {
			t.Fatalf("node %s breaker %q after 429 sheds, want closed", ns.ID, ns.Breaker)
		}
	}
}

// TestDeadlineHeaderShedsAtNode drives the deadline-propagation
// header directly against a node front end: a proxied predict whose
// remaining budget is already spent must shed with 504 before any
// kernel runs.
func TestDeadlineHeaderShedsAtNode(t *testing.T) {
	n := newNode(t)
	resp, err := http.Post(n.srv.URL+"/models?name=m", "application/zip", bytes.NewReader(exportPipe(t, "m")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		t.Fatalf("register status %d", resp.StatusCode)
	}

	req, err := http.NewRequest(http.MethodPost, n.srv.URL+"/predict",
		bytes.NewReader([]byte(`{"model":"m","input":"a nice product"}`)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(frontend.DeadlineHeader, "1000") // 1µs of budget left
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("spent-budget predict status %d, want 504", resp.StatusCode)
	}

	// Sanity: without the header the same request serves.
	resp, err = http.Post(n.srv.URL+"/predict", "application/json",
		bytes.NewReader([]byte(`{"model":"m","input":"a nice product"}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict without header status %d, want 200", resp.StatusCode)
	}
}
