package cluster

// Placement-plane tests: probe hysteresis (flap damping), warmth-aware
// routing order (quarantine vs cold), the rebalancer's pre-warm
// protocol on join/leave, and the idle-goroutine guarantee.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	goruntime "runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pretzel/internal/chaos"
	"pretzel/internal/frontend"
	"pretzel/internal/lifecycle"
	"pretzel/internal/repo"
	"pretzel/internal/runtime"
	"pretzel/internal/serving"
	"pretzel/internal/store"
)

// flapServer is a probe target whose health can be toggled.
func flapServer(t *testing.T, fail *atomic.Bool) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fail.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		if r.URL.Path == "/readyz" {
			fmt.Fprint(w, `{"status":"ok"}`)
			return
		}
		fmt.Fprint(w, "ok")
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestProbeHysteresis: one failed probe round must NOT mark a member
// down (flap damping); two consecutive must, firing onDown exactly
// once; one clean round recovers immediately.
func TestProbeHysteresis(t *testing.T) {
	var fail atomic.Bool
	srv := flapServer(t, &fail)
	var downs atomic.Int32
	reg, err := newRegistry([]Member{{ID: "n0", Addr: srv.URL}}, http.DefaultClient, 50*time.Millisecond, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	reg.onDown = func(id string) { downs.Add(1) }
	m := reg.get("n0")

	fail.Store(true)
	reg.probe(m)
	if !m.up() || downs.Load() != 0 {
		t.Fatalf("one failed round must be damped: up=%v downs=%d", m.up(), downs.Load())
	}
	reg.probe(m)
	if m.up() || downs.Load() != 1 {
		t.Fatalf("two consecutive failures must mark down once: up=%v downs=%d", m.up(), downs.Load())
	}
	reg.probe(m)
	if downs.Load() != 1 {
		t.Fatalf("already-down member must not re-fire onDown: downs=%d", downs.Load())
	}

	// Recovery is immediate: one clean round.
	fail.Store(false)
	reg.probe(m)
	if !m.up() {
		t.Fatal("one clean round must recover the member")
	}
	// A fresh single flap is damped again (the streak reset on recovery).
	fail.Store(true)
	reg.probe(m)
	fail.Store(false)
	reg.probe(m)
	fail.Store(true)
	reg.probe(m)
	if !m.up() || downs.Load() != 1 {
		t.Fatalf("interleaved flaps must never accumulate: up=%v downs=%d", m.up(), downs.Load())
	}
}

// TestProbeFlappingUnderRace drives the live probe loop against a
// server that flips health every request while readers poll routing
// state — the -race exercise for the hysteresis plumbing.
func TestProbeFlappingUnderRace(t *testing.T) {
	// Health flips per probe ROUND (a round = healthz then readyz), not
	// per request, so the failure pattern is strictly alternating.
	var round atomic.Int64
	var roundFail atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			roundFail.Store(round.Add(1)%2 == 0)
		}
		if roundFail.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		if r.URL.Path == "/readyz" {
			fmt.Fprint(w, `{"status":"ok","quarantined":["flappy"]}`)
			return
		}
		fmt.Fprint(w, "ok")
	}))
	defer srv.Close()
	// The per-request probe timeout equals the interval — keep it far
	// above loopback latency so a slow scheduler tick cannot fabricate
	// the two consecutive transport failures this test forbids.
	reg, err := newRegistry([]Member{{ID: "n0", Addr: srv.URL}}, http.DefaultClient, 25*time.Millisecond, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var downs atomic.Int32
	var downErr atomic.Value
	reg.onDown = func(id string) {
		downs.Add(1)
		if e, ok := reg.get(id).lastErr.Load().(string); ok {
			downErr.Store(e)
		}
	}
	reg.start()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					for _, m := range reg.all() {
						_ = m.up()
						_ = m.isQuarantined("flappy")
						_ = m.warmthSnapshot()
					}
					// Sleep between read rounds: on a small machine a
					// spinning reader starves the probe's HTTP client into
					// transport timeouts, which are real failed rounds.
					time.Sleep(200 * time.Microsecond)
				}
			}
		}()
	}
	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()
	reg.close()
	// Strict alternation (fail, ok, fail, ...) never produces two
	// consecutive failed rounds, so the member must never go down.
	if downs.Load() != 0 {
		t.Fatalf("alternating flaps went down %d times despite hysteresis (last: %v)", downs.Load(), downErr.Load())
	}
}

// newColdLifecycleNode builds a lifecycle-managed node whose repository
// already holds the given model zips — lazily, so every model starts
// cold (on disk, not in RAM).
func newColdLifecycleNode(t *testing.T, zips map[string][]byte) (*lifecycle.Manager, *httptest.Server) {
	t.Helper()
	rp, err := repo.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for name, zip := range zips {
		if _, err := rp.Put(name, 0, zip); err != nil {
			t.Fatal(err)
		}
	}
	rt := runtime.New(store.New(), runtime.Config{Executors: 2})
	mgr, err := lifecycle.New(serving.NewLocal(rt, nil), rp, lifecycle.Config{LazyLoad: true})
	if err != nil {
		rt.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	srv := httptest.NewServer(frontend.New(mgr, frontend.Config{}))
	t.Cleanup(srv.Close)
	return mgr, srv
}

// TestQuarantinedWarmLosesToHealthyCold: the scoring scale is
// lexicographic — a replica holding the model warm but quarantined
// (panic containment tripped, via the chaos injector) must rank BELOW a
// healthy replica that would have to cold-load it. Cold is a latency
// problem; quarantined is a correctness problem.
func TestQuarantinedWarmLosesToHealthyCold(t *testing.T) {
	zip := exportPipe(t, "qm")

	// Warm node: plain runtime with tight panic containment, wrapped in
	// the chaos injector that will trip the quarantine.
	rtWarm := runtime.New(store.New(), runtime.Config{
		Executors:      2,
		PanicThreshold: 2,
		PanicWindow:    time.Minute,
		Quarantine:     time.Minute,
	})
	inj := chaos.New(serving.NewLocal(rtWarm, nil), 7)
	t.Cleanup(func() { inj.Close() })
	if _, err := inj.Register(zip, serving.RegisterOptions{Name: "qm"}); err != nil {
		t.Fatal(err)
	}
	warmSrv := httptest.NewServer(frontend.New(inj, frontend.Config{}))
	t.Cleanup(warmSrv.Close)

	// Cold node: lifecycle tier holding the same model on disk only.
	_, coldSrv := newColdLifecycleNode(t, map[string][]byte{"qm": zip})

	r, err := NewRouter([]Member{
		{ID: "warm-node", Addr: warmSrv.URL},
		{ID: "cold-node", Addr: coldSrv.URL},
	}, Config{
		Replication:    2,
		ProbeInterval:  20 * time.Millisecond,
		WarmthInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })

	// Trip the warm node's quarantine through injected kernel panics.
	rule, err := inj.Arm(chaos.Rule{Model: "qm", Effect: chaos.EffectPanic})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		_, _ = inj.Predict(context.Background(), "qm", "a nice product", serving.PredictOptions{})
	}
	if err := inj.Disarm(rule.ID); err != nil {
		t.Fatal(err)
	}

	// Wait for the router's probes and warmth polls to see both truths:
	// the quarantine on warm-node, the cold state on cold-node.
	warm, cold := r.reg.get("warm-node"), r.reg.get("cold-node")
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		w := cold.warmthSnapshot()
		if warm.isQuarantined("qm") && w != nil && !warmState(w.models["qm"]) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !warm.isQuarantined("qm") {
		t.Fatal("probe never picked up the quarantine from /readyz")
	}
	if ws, cs := r.placementScore(warm, "qm"), r.placementScore(cold, "qm"); ws <= cs {
		t.Fatalf("quarantined-warm score %d must exceed healthy-cold score %d", ws, cs)
	}
	if got := r.routeOrder("qm", r.owners("qm")); got[0].ID != "cold-node" {
		t.Fatalf("route order %s,%s: quarantined-but-warm replica must lose to healthy-cold", got[0].ID, got[1].ID)
	}
	// And the routed predict lands on the cold node, pays its load, and
	// is counted as a cold-start route.
	if pred, err := r.Predict(context.Background(), "qm", "a nice product", serving.PredictOptions{}); err != nil || len(pred) != 1 {
		t.Fatalf("predict around the quarantine: %v %v", pred, err)
	}
	st := r.Stats()
	if st.Cluster.ColdRouted == 0 {
		t.Fatalf("cold-start route not counted: %+v", st.Cluster)
	}
}

// lnode is one lifecycle-backed cluster member — the production node
// shape (disk repository + RAM lifecycle), and the only shape that can
// act as a zip-replication source during a rebalance.
type lnode struct {
	mgr *lifecycle.Manager
	srv *httptest.Server
}

func (n *lnode) holds() map[string]bool {
	held := map[string]bool{}
	for _, mi := range n.mgr.Models() {
		bare, _ := runtime.SplitRef(mi.Name)
		held[bare] = true
	}
	return held
}

func newLifecycleNode(t *testing.T) *lnode {
	t.Helper()
	rp, err := repo.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rt := runtime.New(store.New(), runtime.Config{Executors: 2})
	mgr, err := lifecycle.New(serving.NewLocal(rt, nil), rp, lifecycle.Config{})
	if err != nil {
		rt.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	srv := httptest.NewServer(frontend.New(mgr, frontend.Config{}))
	t.Cleanup(srv.Close)
	return &lnode{mgr: mgr, srv: srv}
}

// newLifecycleCluster builds a router over n lifecycle nodes.
func newLifecycleCluster(t *testing.T, n, k int) ([]*lnode, *Router) {
	t.Helper()
	nodes := make([]*lnode, n)
	members := make([]Member, n)
	for i := range nodes {
		nodes[i] = newLifecycleNode(t)
		members[i] = Member{ID: fmt.Sprintf("node%d", i), Addr: nodes[i].srv.URL}
	}
	r, err := NewRouter(members, Config{
		Replication:    k,
		ProbeInterval:  50 * time.Millisecond,
		WarmthInterval: 25 * time.Millisecond,
		PrewarmStagger: -1, // tests want churn handled fast, not gently
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return nodes, r
}

// TestAddMemberPrewarmsBeforeTrafficShifts: by the time AddMember
// returns (ring swapped, traffic shifting), the new member must already
// hold every model the grown ring assigns it — replicated and
// registered, not waiting on a first-request cold start.
func TestAddMemberPrewarmsBeforeTrafficShifts(t *testing.T) {
	_, router := newLifecycleCluster(t, 3, 2)
	models := make([]string, 6)
	for i := range models {
		models[i] = fmt.Sprintf("chm-%d", i)
		if _, err := router.Register(exportPipe(t, models[i]), serving.RegisterOptions{Name: models[i]}); err != nil {
			t.Fatal(err)
		}
	}
	joined := newLifecycleNode(t)
	if err := router.AddMember("node3", joined.srv.URL); err != nil {
		t.Fatal(err)
	}

	owned := 0
	held := joined.holds()
	for _, m := range models {
		for _, o := range router.Owners(m) {
			if o != "node3" {
				continue
			}
			owned++
			if !held[m] {
				t.Fatalf("new member owns %s but does not hold it after AddMember returned (held %v)", m, held)
			}
		}
	}
	if owned == 0 {
		t.Fatalf("join moved no ownership at all: held %v", held)
	}
	st := router.Stats().Cluster
	if st.Rebalances == 0 || st.Prewarms == 0 {
		t.Fatalf("rebalance counters: %+v", st)
	}
	// Traffic on the rebalanced catalog is clean immediately.
	for _, m := range models {
		if _, err := router.Predict(context.Background(), m, "a nice product", serving.PredictOptions{}); err != nil {
			t.Fatalf("post-join predict %s: %v", m, err)
		}
	}
	// Duplicate join is refused.
	if err := router.AddMember("node3", joined.srv.URL); err == nil {
		t.Fatal("duplicate AddMember must fail")
	}
}

// TestRemoveMemberPromotesOwners: leaving a node swaps the ring
// immediately and pre-warms the survivors promoted into the freed
// ownership, so the shrunken fleet serves the whole catalog warm.
func TestRemoveMemberPromotesOwners(t *testing.T) {
	nodes, router := newLifecycleCluster(t, 3, 2)
	models := make([]string, 6)
	for i := range models {
		models[i] = fmt.Sprintf("rmm-%d", i)
		if _, err := router.Register(exportPipe(t, models[i]), serving.RegisterOptions{Name: models[i]}); err != nil {
			t.Fatal(err)
		}
	}
	if err := router.RemoveMember("node1"); err != nil {
		t.Fatal(err)
	}
	if err := router.RemoveMember("node1"); err == nil {
		t.Fatal("double RemoveMember must fail")
	}
	held := map[int]map[string]bool{}
	for i, n := range nodes {
		held[i] = n.holds()
	}
	for _, m := range models {
		owners := router.Owners(m)
		if len(owners) != 2 {
			t.Fatalf("owners of %s after shrink: %v", m, owners)
		}
		for _, o := range owners {
			if o == "node1" {
				t.Fatalf("removed member still owns %s", m)
			}
			var idx int
			fmt.Sscanf(o, "node%d", &idx)
			if !held[idx][m] {
				t.Fatalf("promoted owner %s does not hold %s after RemoveMember returned", o, m)
			}
		}
		if _, err := router.Predict(context.Background(), m, "a nice product", serving.PredictOptions{}); err != nil {
			t.Fatalf("post-leave predict %s: %v", m, err)
		}
	}
}

// TestRouterCloseLeavesNoGoroutines: an idle router runs exactly its
// configured loops (probe, warmth), and Close reaps every one of them —
// churn handling must not leak background goroutines.
func TestRouterCloseLeavesNoGoroutines(t *testing.T) {
	n := newNode(t)
	base := goruntime.NumGoroutine()
	r, err := NewRouter([]Member{{ID: "n0", Addr: n.srv.URL}}, Config{
		Replication:    1,
		ProbeInterval:  10 * time.Millisecond,
		WarmthInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register(exportPipe(t, "gl"), serving.RegisterOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Predict(context.Background(), "gl", "a nice product", serving.PredictOptions{}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		// +1 slack: the HTTP client's idle-conn reaper may lag a tick.
		if goruntime.NumGoroutine() <= base+1 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	t.Fatalf("goroutines leaked after Close: %d > %d\n%s",
		goruntime.NumGoroutine(), base, buf[:goruntime.Stack(buf, true)])
}
