// Rebalancer: membership churn without cold-start storms. On node
// join the ownership delta is computed on a cloned ring and every
// (model, new owner) pair is pre-warmed — the model's zips replicated
// from a current owner and loaded into RAM via POST /models/{name}/warm
// — BEFORE the new ring is swapped in, so traffic only shifts onto
// warm replicas. On leave the ring swaps immediately (the node may
// already be gone) and the promoted owners pre-warm right after; a
// probe-down (post-hysteresis) pre-warms the down node's co-owners in
// the background so failover hits warm RAM instead of disk.
package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"pretzel/internal/runtime"
)

// prewarmTask is one (model, destination) pre-warm unit: make targetID
// hold the model's versions on disk and the model warm in RAM.
type prewarmTask struct {
	model  runtime.ModelInfo
	target string
	// sources are member IDs known to hold the model (the pre-change
	// owner set), tried in order for zip replication.
	sources []string
}

// ownershipDelta lists the (model, owner) pairs that exist under next
// but not under prev: the destinations churn is about to shift traffic
// onto, i.e. the pre-warm work list.
func ownershipDelta(models []runtime.ModelInfo, prev, next *Ring, k int) []prewarmTask {
	var tasks []prewarmTask
	for _, mi := range models {
		name, _ := runtime.SplitRef(mi.Name)
		before := prev.Owners(name, k)
		had := make(map[string]bool, len(before))
		for _, id := range before {
			had[id] = true
		}
		for _, id := range next.Owners(name, k) {
			if !had[id] {
				tasks = append(tasks, prewarmTask{model: mi, target: id, sources: before})
			}
		}
	}
	return tasks
}

// AddMember joins a node to the cluster: it is registered and probed,
// the ownership delta against the grown ring is pre-warmed (staggered,
// concurrency-capped), and only then does the new ring take traffic —
// the join is invisible to tail latency because by the time requests
// re-hash onto the new member, its share of the catalog is warm.
func (r *Router) AddMember(id, addr string) error {
	if r.closed.Load() {
		return runtime.ErrClosed
	}
	ms, err := r.reg.add(Member{ID: id, Addr: addr})
	if err != nil {
		return err
	}
	// Probe synchronously so routing starts from real state, not the
	// optimistic default.
	r.reg.probe(ms)
	models := r.Models()
	r.mu.RLock()
	prev := r.ring
	r.mu.RUnlock()
	next := prev.Clone()
	next.Add(ms.ID)
	r.rebalances.Add(1)
	r.prewarmAll(ownershipDelta(models, prev, next, r.cfg.Replication))
	r.mu.Lock()
	// Re-clone from the CURRENT ring in case a concurrent membership
	// change landed while we pre-warmed: only this member's points are
	// added, nothing else is rolled back.
	current := r.ring.Clone()
	current.Add(ms.ID)
	r.ring = current
	r.mu.Unlock()
	return nil
}

// RemoveMember leaves a node from the cluster. The ring swaps first —
// the node may already be dead, and routing to it helps nobody — then
// the owners promoted by the shrink are pre-warmed from the survivors.
func (r *Router) RemoveMember(id string) error {
	if r.closed.Load() {
		return runtime.ErrClosed
	}
	if r.reg.get(id) == nil {
		return fmt.Errorf("cluster: no member %q", id)
	}
	models := r.Models()
	r.mu.Lock()
	prev := r.ring
	next := prev.Clone()
	next.Remove(id)
	r.ring = next
	r.mu.Unlock()
	r.reg.remove(id)
	r.rebalances.Add(1)
	r.prewarmAll(ownershipDelta(models, prev, next, r.cfg.Replication))
	return nil
}

// onMemberDown is the registry's post-hysteresis down callback: the
// ring keeps the member (it usually comes back — that is what the
// hysteresis is for), but its co-owners are pre-warmed in the
// background so the failover traffic they are about to absorb hits
// warm RAM. Runs from a probe goroutine; the work is handed to a
// bg-tracked goroutine immediately.
func (r *Router) onMemberDown(id string) {
	if r.closed.Load() {
		return
	}
	r.bg.Add(1)
	go func() {
		defer r.bg.Done()
		models := r.Models()
		r.mu.RLock()
		ring := r.ring
		r.mu.RUnlock()
		var tasks []prewarmTask
		for _, mi := range models {
			name, _ := runtime.SplitRef(mi.Name)
			owners := ring.Owners(name, r.cfg.Replication)
			hit := false
			for _, o := range owners {
				hit = hit || o == id
			}
			if !hit {
				continue
			}
			for _, o := range owners {
				if o != id {
					tasks = append(tasks, prewarmTask{model: mi, target: o, sources: owners})
				}
			}
		}
		if len(tasks) == 0 {
			return
		}
		r.rebalances.Add(1)
		r.prewarmAll(tasks)
	}()
}

// prewarmAll drains the pre-warm work list through a bounded worker
// pool, staggering launches so a membership change warms the fleet
// gradually instead of stampeding every disk at once.
func (r *Router) prewarmAll(tasks []prewarmTask) {
	if len(tasks) == 0 || r.cfg.HashOnly {
		return
	}
	workers := r.cfg.PrewarmConcurrency
	if workers > len(tasks) {
		workers = len(tasks)
	}
	feed := make(chan prewarmTask)
	done := make(chan struct{})
	for i := 0; i < workers; i++ {
		go func() {
			for t := range feed {
				r.prewarmOne(t)
			}
			done <- struct{}{}
		}()
	}
	for i, t := range tasks {
		if r.closed.Load() {
			break
		}
		if i > 0 && r.cfg.PrewarmStagger > 0 {
			time.Sleep(r.cfg.PrewarmStagger)
		}
		feed <- t
	}
	close(feed)
	for i := 0; i < workers; i++ {
		<-done
	}
}

// prewarmOne makes one member hold one model warm: replicate any
// missing versions from a source owner, copy labels, then load the
// model into RAM through the warm endpoint.
func (r *Router) prewarmOne(t prewarmTask) {
	target := r.reg.get(t.target)
	if target == nil || !target.healthy.Load() {
		return
	}
	name, _ := runtime.SplitRef(t.model.Name)
	held := r.heldVersions(target, name)
	for _, vi := range t.model.Versions {
		if held[vi.Version] {
			continue
		}
		zip := r.fetchZip(name, vi.Version, t.sources, t.target)
		if zip == nil {
			r.prewarmErrs.Add(1)
			continue
		}
		u := target.Addr + "/models?name=" + url.QueryEscape(name) + "&version=" + strconv.Itoa(vi.Version)
		resp, err := r.opDo(http.MethodPost, u, "application/zip", zip)
		if err != nil {
			r.prewarmErrs.Add(1)
			continue
		}
		resp.Body.Close()
		// 201 = installed; 409 = already published there (a racing
		// upload or an earlier partial rebalance): both mean the bytes
		// are on the target.
		if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusConflict {
			r.prewarmErrs.Add(1)
		}
	}
	for label, v := range t.model.Labels {
		body := []byte(fmt.Sprintf(`{"label":%q,"version":%d}`, label, v))
		if resp, err := r.opDo(http.MethodPost, target.Addr+"/models/"+url.PathEscape(name)+"/labels", "application/json", body); err == nil {
			resp.Body.Close()
		}
	}
	resp, err := r.opDo(http.MethodPost, target.Addr+"/models/"+url.PathEscape(name)+"/warm", "", nil)
	if err != nil {
		r.prewarmErrs.Add(1)
		return
	}
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK, http.StatusNotImplemented:
		// 501: the member has no lifecycle tier — whatever it holds is
		// already resident, so the pre-warm goal is met.
		r.prewarms.Add(1)
	default:
		r.prewarmErrs.Add(1)
	}
}

// heldVersions lists the versions a member already holds for a model
// (empty on any failure: replication re-sends and 409s are tolerated).
func (r *Router) heldVersions(m *memberState, name string) map[int]bool {
	held := make(map[int]bool)
	resp, err := r.opDo(http.MethodGet, m.Addr+"/models/"+url.PathEscape(name), "", nil)
	if err != nil {
		return held
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return held
	}
	var info runtime.ModelInfo
	if json.NewDecoder(resp.Body).Decode(&info) != nil {
		return held
	}
	for _, vi := range info.Versions {
		held[vi.Version] = true
	}
	return held
}

// fetchZip pulls one version's zip bytes from the first source owner
// that can export it (skipping the target itself and down members).
func (r *Router) fetchZip(name string, version int, sources []string, target string) []byte {
	for _, id := range sources {
		if id == target {
			continue
		}
		src := r.reg.get(id)
		if src == nil || !src.healthy.Load() {
			continue
		}
		u := src.Addr + "/models/" + url.PathEscape(name) + "/zip?version=" + strconv.Itoa(version)
		resp, err := r.opDo(http.MethodGet, u, "", nil)
		if err != nil {
			continue
		}
		raw, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil || resp.StatusCode != http.StatusOK || len(raw) == 0 {
			continue
		}
		return raw
	}
	return nil
}
