package pipeline

import (
	"bytes"
	"strings"
	"testing"

	"pretzel/internal/ml"
	"pretzel/internal/ops"
	"pretzel/internal/schema"
	"pretzel/internal/text"
	"pretzel/internal/vector"
)

// buildSA constructs a small sentiment-analysis pipeline:
// Tokenizer -> {CharNgram, WordNgram} -> Concat -> LinearPredictor.
func buildSA(t *testing.T) *Pipeline {
	t.Helper()
	corpus := []string{"nice product works great", "terrible broken refund bad"}
	cb := text.NewDictBuilder()
	wb := text.NewDictBuilder()
	for _, doc := range corpus {
		toks := text.Tokenize(doc, nil)
		for _, tok := range toks {
			text.ObserveCharNgrams(cb, []byte(tok), 2, 3)
		}
		text.ObserveWordNgrams(wb, toks, 2, nil)
	}
	cd, wd := cb.Build(0), wb.Build(0)
	weights := make([]float32, cd.Size()+wd.Size())
	if ix := wd.Lookup("nice"); ix >= 0 {
		weights[cd.Size()+int(ix)] = 2
	}
	if ix := wd.Lookup("bad"); ix >= 0 {
		weights[cd.Size()+int(ix)] = -2
	}
	return &Pipeline{
		Name:        "sa-test",
		InputSchema: schema.Text("Text"),
		Stats:       Stats{MaxVectorSize: cd.Size() + wd.Size(), SparseOutput: true},
		Nodes: []Node{
			{Op: &ops.Tokenizer{}, Inputs: []int{InputID}},
			{Op: &ops.CharNgram{MinN: 2, MaxN: 3, Dict: cd}, Inputs: []int{0}},
			{Op: &ops.WordNgram{MaxN: 2, Dict: wd}, Inputs: []int{0}},
			{Op: &ops.Concat{Dims: []int{cd.Size(), wd.Size()}}, Inputs: []int{1, 2}},
			{Op: &ops.LinearPredictor{Model: &ml.LinearModel{Kind: ml.LogisticRegression, Weights: weights}}, Inputs: []int{3}},
		},
	}
}

func TestValidate(t *testing.T) {
	p := buildSA(t)
	out, err := p.Validate()
	if err != nil {
		t.Fatal(err)
	}
	c, err := out.Single()
	if err != nil {
		t.Fatal(err)
	}
	if c.Kind != schema.ColScalar {
		t.Fatalf("output kind %v", c.Kind)
	}
}

func TestValidateErrors(t *testing.T) {
	empty := &Pipeline{Name: "e", InputSchema: schema.Text("t")}
	if _, err := empty.Validate(); err == nil {
		t.Fatal("empty pipeline must fail validation")
	}
	noSchema := buildSA(t)
	noSchema.InputSchema = nil
	if _, err := noSchema.Validate(); err == nil {
		t.Fatal("missing input schema must fail")
	}
	// Kind mismatch: tokenizer fed a vector input.
	bad := &Pipeline{
		Name:        "bad",
		InputSchema: schema.Vector("v", 3, false),
		Nodes:       []Node{{Op: &ops.Tokenizer{}, Inputs: []int{InputID}}},
	}
	if _, err := bad.Validate(); err == nil {
		t.Fatal("kind mismatch must fail")
	}
	// Forward reference.
	fwd := buildSA(t)
	fwd.Nodes[0].Inputs = []int{3}
	if _, err := fwd.Validate(); err == nil {
		t.Fatal("forward reference must fail")
	}
}

func TestRunSA(t *testing.T) {
	p := buildSA(t)
	in := vector.New(0)
	out := vector.New(0)

	in.SetText("a nice thing")
	if err := p.Run(in, out, nil); err != nil {
		t.Fatal(err)
	}
	pos := out.Dense[0]
	in.SetText("a bad thing")
	if err := p.Run(in, out, nil); err != nil {
		t.Fatal(err)
	}
	neg := out.Dense[0]
	if pos <= 0.5 || neg >= 0.5 {
		t.Fatalf("sentiment scores: pos=%v neg=%v", pos, neg)
	}
}

func TestRunWithScratch(t *testing.T) {
	p := buildSA(t)
	scratch := make([]*vector.Vector, len(p.Nodes))
	for i := range scratch {
		scratch[i] = vector.New(64)
	}
	in, out := vector.New(0), vector.New(0)
	in.SetText("nice nice nice")
	if err := p.Run(in, out, scratch); err != nil {
		t.Fatal(err)
	}
	first := out.Dense[0]
	// Re-running with the same scratch must give the same answer.
	if err := p.Run(in, out, scratch); err != nil {
		t.Fatal(err)
	}
	if out.Dense[0] != first {
		t.Fatalf("scratch reuse changed result: %v vs %v", out.Dense[0], first)
	}
}

func TestRunErrorPropagates(t *testing.T) {
	p := buildSA(t)
	in, out := vector.New(0), vector.New(0)
	in.SetDense([]float32{1}) // wrong input kind
	err := p.Run(in, out, nil)
	if err == nil {
		t.Fatal("wrong input kind must error")
	}
	if !strings.Contains(err.Error(), "Tokenizer") {
		t.Fatalf("error should name the failing operator: %v", err)
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	p := buildSA(t)
	b, err := p.ExportBytes()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ImportBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != p.Name || len(got.Nodes) != len(p.Nodes) {
		t.Fatalf("structure lost: %s %d nodes", got.Name, len(got.Nodes))
	}
	if got.Checksum() != p.Checksum() {
		t.Fatal("checksum changed over export/import")
	}
	if got.Stats != p.Stats {
		t.Fatalf("stats lost: %+v", got.Stats)
	}
	// Same predictions.
	in, out1, out2 := vector.New(0), vector.New(0), vector.New(0)
	in.SetText("nice bad nice")
	if err := p.Run(in, out1, nil); err != nil {
		t.Fatal(err)
	}
	if err := got.Run(in, out2, nil); err != nil {
		t.Fatal(err)
	}
	if out1.Dense[0] != out2.Dense[0] {
		t.Fatalf("prediction changed: %v vs %v", out1.Dense[0], out2.Dense[0])
	}
}

func TestImportErrors(t *testing.T) {
	if _, err := ImportBytes([]byte("not a zip")); err == nil {
		t.Fatal("garbage must fail")
	}
	// Valid zip, no manifest.
	var buf bytes.Buffer
	p := buildSA(t)
	_ = p // build a zip without manifest by hand
	zb, _ := p.ExportBytes()
	_ = zb
	buf.Reset()
	if _, err := ImportBytes(buf.Bytes()); err == nil {
		t.Fatal("empty must fail")
	}
}

func TestMemBytesAndChecksum(t *testing.T) {
	p := buildSA(t)
	if p.MemBytes() < 1000 {
		t.Fatalf("membytes too small: %d", p.MemBytes())
	}
	q := buildSA(t)
	if p.Checksum() != q.Checksum() {
		t.Fatal("identical pipelines must share checksum")
	}
	q.Nodes = q.Nodes[:len(q.Nodes)-1]
	if p.Checksum() == q.Checksum() {
		t.Fatal("truncated pipeline must differ")
	}
}

func TestExportedFileLayout(t *testing.T) {
	p := buildSA(t)
	b, err := p.ExportBytes()
	if err != nil {
		t.Fatal(err)
	}
	// The archive must contain one directory per operator, ML.Net style.
	got, err := ImportBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []string{"Tokenizer", "CharNgram", "WordNgram", "Concat", "LinearPredictor"}
	for i, k := range kinds {
		if got.Nodes[i].Op.Info().Kind != k {
			t.Fatalf("node %d kind %s, want %s", i, got.Nodes[i].Op.Info().Kind, k)
		}
	}
}
