// Package pipeline represents trained model pipelines: DAGs of trained
// operators plus the statistics collected during training. Pipelines are
// exported in the ML.Net style the paper describes (§2: "compressed files
// containing several directories, one per pipeline operator, where each
// directory stores operator parameters") — here a zip archive with a
// manifest and one directory per operator.
package pipeline

import (
	"archive/zip"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"pretzel/internal/ops"
	"pretzel/internal/schema"
	"pretzel/internal/vector"
)

// InputID is the pseudo node id denoting the pipeline input.
const InputID = -1

// Node is one operator in the DAG with its input edges.
type Node struct {
	Op     ops.Op
	Inputs []int // producer node ids (InputID for the pipeline input)
}

// Stats carries training-time statistics the compiler consumes (§4.1.1:
// "each Flour transformation accepts as input an optional set of
// statistics gathered from training ... max vector size, dense/sparse
// representations, etc.").
type Stats struct {
	MaxVectorSize int     `json:"max_vector_size"`
	AvgTokens     float64 `json:"avg_tokens"`
	SparseOutput  bool    `json:"sparse_output"`
}

// Pipeline is a trained model pipeline.
type Pipeline struct {
	Name        string
	Nodes       []Node // topological order; the last node is the output
	InputSchema *schema.Schema
	Stats       Stats
}

// Output returns the id of the output node.
func (p *Pipeline) Output() int { return len(p.Nodes) - 1 }

// Validate propagates schemas through the DAG, checking operator input
// kinds and graph well-formedness (a final predictor must exist). It
// returns the output schema.
func (p *Pipeline) Validate() (*schema.Schema, error) {
	if len(p.Nodes) == 0 {
		return nil, fmt.Errorf("pipeline %s: empty", p.Name)
	}
	if p.InputSchema == nil {
		return nil, fmt.Errorf("pipeline %s: no input schema", p.Name)
	}
	schemas := make([]*schema.Schema, len(p.Nodes))
	for i, n := range p.Nodes {
		ins := make([]*schema.Schema, len(n.Inputs))
		for k, src := range n.Inputs {
			switch {
			case src == InputID:
				ins[k] = p.InputSchema
			case src >= 0 && src < i:
				ins[k] = schemas[src]
			default:
				return nil, fmt.Errorf("pipeline %s: node %d input %d not topologically ordered", p.Name, i, src)
			}
		}
		out, err := n.Op.OutSchema(ins)
		if err != nil {
			return nil, fmt.Errorf("pipeline %s: node %d (%s): %w", p.Name, i, n.Op.Info().Kind, err)
		}
		schemas[i] = out
	}
	return schemas[p.Output()], nil
}

// Run evaluates the pipeline on one input record, materializing one
// intermediate vector per node (the reference, unoptimized semantics used
// by tests and by the black-box baseline). scratch, when non-nil, supplies
// reusable vectors indexed by node id.
func (p *Pipeline) Run(in *vector.Vector, out *vector.Vector, scratch []*vector.Vector) error {
	if len(p.Nodes) == 0 {
		return fmt.Errorf("pipeline %s: empty", p.Name)
	}
	vecs := scratch
	if len(vecs) < len(p.Nodes) {
		vecs = make([]*vector.Vector, len(p.Nodes))
		for i := range vecs {
			vecs[i] = vector.New(0)
		}
	}
	var ins [4]*vector.Vector
	for i, n := range p.Nodes {
		inputs := ins[:0]
		for _, src := range n.Inputs {
			if src == InputID {
				inputs = append(inputs, in)
			} else {
				inputs = append(inputs, vecs[src])
			}
		}
		dst := vecs[i]
		if i == p.Output() {
			dst = out
		}
		if err := n.Op.Transform(inputs, dst); err != nil {
			return fmt.Errorf("pipeline %s: node %d (%s): %w", p.Name, i, n.Op.Info().Kind, err)
		}
	}
	return nil
}

// MemBytes sums the parameter footprint of all operators.
func (p *Pipeline) MemBytes() int {
	n := 128
	for _, node := range p.Nodes {
		n += ops.MemBytes(node.Op)
	}
	return n
}

// Checksum combines all operator checksums into a pipeline identity.
func (p *Pipeline) Checksum() uint64 {
	var acc uint64 = uint64(len(p.Nodes))
	for i, n := range p.Nodes {
		acc = acc*0x100000001b3 ^ ops.Checksum(n.Op) ^ uint64(i)
	}
	return acc
}

// --- export / import ---

// manifest is the JSON descriptor stored at the root of a model file.
type manifest struct {
	Name   string         `json:"name"`
	Stats  Stats          `json:"stats"`
	Input  manifestSchema `json:"input"`
	Nodes  []manifestNode `json:"nodes"`
	Format int            `json:"format"`
}

type manifestNode struct {
	Kind   string `json:"kind"`
	Inputs []int  `json:"inputs"`
	Dir    string `json:"dir"`
}

type manifestSchema struct {
	Cols []schema.Column `json:"cols"`
}

// Export writes the pipeline as a zip archive: manifest.json plus one
// directory per operator holding its serialized parameters.
func (p *Pipeline) Export(w io.Writer) error {
	zw := zip.NewWriter(w)
	m := manifest{Name: p.Name, Stats: p.Stats, Format: 1}
	if p.InputSchema != nil {
		m.Input.Cols = p.InputSchema.Cols
	}
	for i, n := range p.Nodes {
		dir := fmt.Sprintf("op_%03d_%s", i, n.Op.Info().Kind)
		m.Nodes = append(m.Nodes, manifestNode{Kind: n.Op.Info().Kind, Inputs: n.Inputs, Dir: dir})
		fw, err := zw.Create(dir + "/params.bin")
		if err != nil {
			return fmt.Errorf("pipeline export: %w", err)
		}
		if err := n.Op.WriteParams(fw); err != nil {
			return fmt.Errorf("pipeline export node %d: %w", i, err)
		}
	}
	mb, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	fw, err := zw.Create("manifest.json")
	if err != nil {
		return err
	}
	if _, err := fw.Write(mb); err != nil {
		return err
	}
	return zw.Close()
}

// ExportBytes is Export into a fresh byte slice.
func (p *Pipeline) ExportBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := p.Export(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// OpResolver maps a serialized operator to an instance. It allows the
// importer to share operator objects across model files: a white-box
// loader checksums raw and returns a previously built instance when the
// bytes match (skipping deserialization entirely — the §4.1.3 load-time
// optimization), while the default resolver always deserializes.
type OpResolver func(kind string, raw []byte) (ops.Op, error)

// DefaultResolver deserializes every operator (black-box semantics:
// every pipeline owns fresh parameter objects).
func DefaultResolver(kind string, raw []byte) (ops.Op, error) {
	return ops.Read(kind, bytes.NewReader(raw))
}

// Import reads a pipeline from a zip archive produced by Export.
func Import(r io.ReaderAt, size int64) (*Pipeline, error) {
	return ImportWith(r, size, DefaultResolver)
}

// ImportWith reads a pipeline resolving each operator through resolve.
func ImportWith(r io.ReaderAt, size int64, resolve OpResolver) (*Pipeline, error) {
	zr, err := zip.NewReader(r, size)
	if err != nil {
		return nil, fmt.Errorf("pipeline import: %w", err)
	}
	files := make(map[string]*zip.File, len(zr.File))
	for _, f := range zr.File {
		files[f.Name] = f
	}
	mf, ok := files["manifest.json"]
	if !ok {
		return nil, fmt.Errorf("pipeline import: missing manifest.json")
	}
	mr, err := mf.Open()
	if err != nil {
		return nil, err
	}
	defer mr.Close()
	var m manifest
	if err := json.NewDecoder(mr).Decode(&m); err != nil {
		return nil, fmt.Errorf("pipeline import: manifest: %w", err)
	}
	p := &Pipeline{Name: m.Name, Stats: m.Stats, InputSchema: schema.New(m.Input.Cols...)}
	for i, mn := range m.Nodes {
		pf, ok := files[mn.Dir+"/params.bin"]
		if !ok {
			return nil, fmt.Errorf("pipeline import: node %d: missing %s/params.bin", i, mn.Dir)
		}
		pr, err := pf.Open()
		if err != nil {
			return nil, err
		}
		raw, err := io.ReadAll(pr)
		pr.Close()
		if err != nil {
			return nil, fmt.Errorf("pipeline import: node %d: %w", i, err)
		}
		op, err := resolve(mn.Kind, raw)
		if err != nil {
			return nil, fmt.Errorf("pipeline import: node %d: %w", i, err)
		}
		p.Nodes = append(p.Nodes, Node{Op: op, Inputs: mn.Inputs})
	}
	if _, err := p.Validate(); err != nil {
		return nil, fmt.Errorf("pipeline import: %w", err)
	}
	return p, nil
}

// ImportBytes is Import from a byte slice.
func ImportBytes(b []byte) (*Pipeline, error) {
	return Import(bytes.NewReader(b), int64(len(b)))
}

// ImportBytesWith is ImportWith from a byte slice.
func ImportBytesWith(b []byte, resolve OpResolver) (*Pipeline, error) {
	return ImportWith(bytes.NewReader(b), int64(len(b)), resolve)
}
