package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	if b := bucketFor(0); b != 0 {
		t.Fatalf("bucketFor(0)=%d", b)
	}
	if b := bucketFor(1); b != 1 {
		t.Fatalf("bucketFor(1)=%d", b)
	}
	// 2^(k-1) and 2^k - 1 land in bucket k.
	for k := 1; k < 63; k++ {
		lo, hi := int64(1)<<(k-1), int64(1)<<k-1
		if bucketFor(lo) != k || bucketFor(hi) != k {
			t.Fatalf("bucket %d: lo=%d hi=%d", k, bucketFor(lo), bucketFor(hi))
		}
		if up := bucketUpper(k); up != hi {
			t.Fatalf("bucketUpper(%d)=%d want %d", k, up, hi)
		}
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(99) != 0 {
		t.Fatal("empty histogram must read zero")
	}
	if s := h.Snapshot(); s.Count != 0 || s.P99Nanos != 0 {
		t.Fatalf("empty snapshot %+v", s)
	}
}

func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	// 90 fast samples (~1µs) and 10 slow ones (~1ms).
	for i := 0; i < 90; i++ {
		h.Record(time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Record(time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count=%d", h.Count())
	}
	p50, p95, p99 := h.Percentile(50), h.Percentile(95), h.Percentile(99)
	// p50 resolves inside the microsecond bucket (upper bound < 2µs),
	// p95/p99 inside the millisecond bucket (upper bound < 2ms).
	if p50 < time.Microsecond || p50 >= 2*time.Microsecond {
		t.Fatalf("p50=%v", p50)
	}
	if p95 < time.Millisecond || p95 >= 2*time.Millisecond {
		t.Fatalf("p95=%v", p95)
	}
	if p99 < p95 {
		t.Fatalf("p99=%v < p95=%v", p99, p95)
	}
	// Upper-bound resolution must never under-report a sample.
	if h.Percentile(100) < time.Millisecond {
		t.Fatalf("p100=%v under-reports", h.Percentile(100))
	}
	mean := h.Mean()
	if mean < 50*time.Microsecond || mean > 200*time.Microsecond {
		t.Fatalf("mean=%v", mean)
	}
	snap := h.Snapshot()
	if snap.Count != 100 || snap.P50() != p50 || snap.P95() != p95 || snap.P99() != p99 {
		t.Fatalf("snapshot %+v vs %v/%v/%v", snap, p50, p95, p99)
	}
	h.Reset()
	if h.Count() != 0 || h.Snapshot().P99Nanos != 0 {
		t.Fatal("reset must zero the histogram")
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Record(-time.Second)
	if h.Count() != 1 || h.Percentile(100) != 0 {
		t.Fatalf("negative sample must clamp to 0: count=%d p100=%v", h.Count(), h.Percentile(100))
	}
}

// TestHistogramConcurrent hammers Record from many goroutines; with
// -race this is the lock-freedom test, and the total count must balance.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(time.Duration(g*1000+i) * time.Nanosecond)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Fatalf("count=%d want %d", h.Count(), goroutines*per)
	}
}

// TestHistogramRecordAllocFree asserts Record performs zero heap
// allocations — the property that lets the runtime record per-model
// latency inside the zero-alloc warm Predict path.
func TestHistogramRecordAllocFree(t *testing.T) {
	var h Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		h.Record(123 * time.Microsecond)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %v/run", allocs)
	}
}
