// Lock-free latency histogram for the serving hot path. The Recorder in
// this package keeps every sample and sorts on read — fine for offline
// experiment harnesses, ruinous inside a server: Record takes a mutex
// and appends (allocating), and every percentile read re-sorts the whole
// sample set. Histogram replaces it on the hot path: 64 power-of-two
// buckets with atomic counters, so Record is two atomic adds (no locks,
// no allocation — the warm zero-alloc Predict path records through it)
// and percentile reads cost one pass over 64 counters.
package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets covers every non-negative int64 nanosecond duration:
// bucket 0 holds exactly 0, bucket k (1..63) holds [2^(k-1), 2^k).
const histBuckets = 64

// Histogram is a fixed-bucket concurrent latency histogram. The zero
// value is ready to use; all methods are safe for concurrent use.
// Percentiles are resolved to the upper bound of the containing
// power-of-two bucket, i.e. they over-estimate by at most 2× — the
// right bias for latency SLO accounting (never under-report).
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	sum    atomic.Int64 // total recorded nanoseconds
}

// bucketFor maps a non-negative nanosecond value to its bucket index.
func bucketFor(ns int64) int {
	return bits.Len64(uint64(ns))
}

// bucketUpper is the largest value bucket i can hold.
func bucketUpper(i int) int64 {
	if i == 0 {
		return 0
	}
	return (int64(1) << i) - 1
}

// Record adds one sample. Two atomic adds: lock-free and
// allocation-free, safe on the zero-alloc warm prediction path.
func (h *Histogram) Record(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketFor(ns)].Add(1)
	h.sum.Add(ns)
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Mean returns the arithmetic mean of the recorded samples.
func (h *Histogram) Mean() time.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return time.Duration(uint64(h.sum.Load()) / n)
}

// Percentile returns the p-th percentile (0 < p <= 100) resolved to the
// upper bound of its bucket; zero when empty.
func (h *Histogram) Percentile(p float64) time.Duration {
	var counts [histBuckets]uint64
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	return percentileOf(&counts, total, p)
}

// percentileOf resolves one percentile over a loaded bucket array.
func percentileOf(counts *[histBuckets]uint64, total uint64, p float64) time.Duration {
	if total == 0 {
		return 0
	}
	rank := uint64(p / 100 * float64(total))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen uint64
	for i, c := range counts {
		seen += c
		if seen >= rank {
			return time.Duration(bucketUpper(i))
		}
	}
	return time.Duration(bucketUpper(histBuckets - 1))
}

// HistogramSnapshot is a point-in-time JSON-friendly view of a
// Histogram: sample count, mean and the serving percentiles.
type HistogramSnapshot struct {
	Count     uint64 `json:"count"`
	MeanNanos int64  `json:"mean_ns"`
	P50Nanos  int64  `json:"p50_ns"`
	P95Nanos  int64  `json:"p95_ns"`
	P99Nanos  int64  `json:"p99_ns"`
}

// P50 returns the snapshot's median as a duration.
func (s HistogramSnapshot) P50() time.Duration { return time.Duration(s.P50Nanos) }

// P95 returns the snapshot's 95th percentile as a duration.
func (s HistogramSnapshot) P95() time.Duration { return time.Duration(s.P95Nanos) }

// P99 returns the snapshot's 99th percentile as a duration.
func (s HistogramSnapshot) P99() time.Duration { return time.Duration(s.P99Nanos) }

// Snapshot loads the buckets once and derives count, mean and the
// p50/p95/p99 percentiles from that single consistent-enough view
// (concurrent writers may land between bucket loads; the skew is at
// most the writes of one scheduling quantum, fine for monitoring).
func (h *Histogram) Snapshot() HistogramSnapshot {
	var counts [histBuckets]uint64
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	snap := HistogramSnapshot{Count: total}
	if total == 0 {
		return snap
	}
	snap.MeanNanos = int64(uint64(h.sum.Load()) / total)
	snap.P50Nanos = int64(percentileOf(&counts, total, 50))
	snap.P95Nanos = int64(percentileOf(&counts, total, 95))
	snap.P99Nanos = int64(percentileOf(&counts, total, 99))
	return snap
}

// Reset zeroes all buckets (test/experiment support; not atomic with
// respect to concurrent Record calls).
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.sum.Store(0)
}
