package metrics

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestRecorderPercentiles(t *testing.T) {
	r := NewRecorder(100)
	for i := 1; i <= 100; i++ {
		r.Record(time.Duration(i) * time.Millisecond)
	}
	if got := r.Percentile(50); got != 50*time.Millisecond {
		t.Fatalf("p50=%v", got)
	}
	if got := r.Percentile(99); got != 99*time.Millisecond {
		t.Fatalf("p99=%v", got)
	}
	if got := r.Percentile(100); got != 100*time.Millisecond {
		t.Fatalf("p100=%v", got)
	}
	if got := r.Max(); got != 100*time.Millisecond {
		t.Fatalf("max=%v", got)
	}
	if got := r.Min(); got != 1*time.Millisecond {
		t.Fatalf("min=%v", got)
	}
	if got := r.Mean(); got != 50500*time.Microsecond {
		t.Fatalf("mean=%v", got)
	}
	if r.Count() != 100 {
		t.Fatalf("count=%d", r.Count())
	}
}

func TestRecorderEmpty(t *testing.T) {
	r := NewRecorder(0)
	if r.Percentile(99) != 0 || r.Mean() != 0 || r.Max() != 0 || r.Min() != 0 {
		t.Fatal("empty recorder should return zeros")
	}
	if r.CDF(10) != nil {
		t.Fatal("empty CDF should be nil")
	}
	if r.Summary() == "" {
		t.Fatal("summary")
	}
}

func TestRecorderReset(t *testing.T) {
	r := NewRecorder(0)
	r.Record(time.Second)
	r.Reset()
	if r.Count() != 0 {
		t.Fatal("reset")
	}
}

func TestRecordAfterPercentile(t *testing.T) {
	r := NewRecorder(0)
	r.Record(2 * time.Millisecond)
	_ = r.Percentile(50)
	r.Record(1 * time.Millisecond) // out of order; must re-sort
	if got := r.Min(); got != time.Millisecond {
		t.Fatalf("min=%v", got)
	}
	if got := r.Percentile(100); got != 2*time.Millisecond {
		t.Fatalf("p100=%v", got)
	}
}

func TestCDFMonotone(t *testing.T) {
	r := NewRecorder(0)
	for i := 100; i >= 1; i-- {
		r.Record(time.Duration(i) * time.Microsecond)
	}
	pts := r.CDF(20)
	if len(pts) != 20 {
		t.Fatalf("points=%d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Value < pts[i-1].Value || pts[i].Frac <= pts[i-1].Frac {
			t.Fatalf("CDF not monotone at %d: %+v %+v", i, pts[i-1], pts[i])
		}
	}
	if pts[len(pts)-1].Frac != 1.0 {
		t.Fatal("last CDF point must be 1.0")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Record(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if r.Count() != 4000 {
		t.Fatalf("count=%d", r.Count())
	}
}

func TestHeapInUse(t *testing.T) {
	before := HeapInUse()
	big := make([]byte, 32<<20)
	for i := range big {
		big[i] = byte(i)
	}
	after := HeapInUse()
	delta := int64(after) - int64(before)
	runtime.KeepAlive(big)
	if delta < 16<<20 {
		t.Fatalf("heap delta %d not reflecting 32MB allocation", delta)
	}
}

func TestThroughput(t *testing.T) {
	tp := NewThroughput()
	tp.Add(10)
	tp.Add(5)
	if tp.Count() != 15 {
		t.Fatalf("count=%d", tp.Count())
	}
	time.Sleep(10 * time.Millisecond)
	if qps := tp.PerSecond(); qps <= 0 || qps > 15/0.01 {
		t.Fatalf("qps=%v", qps)
	}
}
