// Package metrics provides the measurement utilities the experiment
// harness uses: latency recorders with percentile/CDF extraction, heap
// usage snapshots and throughput counters.
package metrics

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Recorder collects latency samples. Safe for concurrent use.
type Recorder struct {
	mu      sync.Mutex
	samples []time.Duration
	sorted  bool
}

// NewRecorder returns an empty recorder with the given capacity hint.
func NewRecorder(capHint int) *Recorder {
	return &Recorder{samples: make([]time.Duration, 0, capHint)}
}

// Record appends one sample.
func (r *Recorder) Record(d time.Duration) {
	r.mu.Lock()
	r.samples = append(r.samples, d)
	r.sorted = false
	r.mu.Unlock()
}

// Count returns the number of samples.
func (r *Recorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.samples)
}

// Reset discards all samples.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.samples = r.samples[:0]
	r.sorted = false
	r.mu.Unlock()
}

func (r *Recorder) ensureSorted() {
	if !r.sorted {
		sort.Slice(r.samples, func(i, j int) bool { return r.samples[i] < r.samples[j] })
		r.sorted = true
	}
}

// Percentile returns the p-th percentile (0 < p <= 100) using
// nearest-rank; zero duration when empty.
func (r *Recorder) Percentile(p float64) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.samples) == 0 {
		return 0
	}
	r.ensureSorted()
	rank := int(p/100*float64(len(r.samples))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(r.samples) {
		rank = len(r.samples) - 1
	}
	return r.samples[rank]
}

// Mean returns the arithmetic mean of the samples.
func (r *Recorder) Mean() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range r.samples {
		sum += s
	}
	return sum / time.Duration(len(r.samples))
}

// Max returns the maximum sample (the paper's "worst case").
func (r *Recorder) Max() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	var m time.Duration
	for _, s := range r.samples {
		if s > m {
			m = s
		}
	}
	return m
}

// Min returns the minimum sample.
func (r *Recorder) Min() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.samples) == 0 {
		return 0
	}
	m := r.samples[0]
	for _, s := range r.samples[1:] {
		if s < m {
			m = s
		}
	}
	return m
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value time.Duration
	Frac  float64 // fraction of samples <= Value, in (0,1]
}

// CDF returns an n-point empirical CDF (n evenly spaced quantiles).
func (r *Recorder) CDF(n int) []CDFPoint {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.samples) == 0 || n <= 0 {
		return nil
	}
	r.ensureSorted()
	pts := make([]CDFPoint, 0, n)
	for i := 1; i <= n; i++ {
		frac := float64(i) / float64(n)
		rank := int(frac*float64(len(r.samples))+0.5) - 1
		if rank < 0 {
			rank = 0
		}
		if rank >= len(r.samples) {
			rank = len(r.samples) - 1
		}
		pts = append(pts, CDFPoint{Value: r.samples[rank], Frac: frac})
	}
	return pts
}

// Summary formats count/mean/p50/p99/max on one line.
func (r *Recorder) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		r.Count(), r.Mean(), r.Percentile(50), r.Percentile(99), r.Max())
}

// HeapInUse runs a full GC and returns the live heap bytes. The memory
// experiments (Fig. 8) take the difference of two snapshots around a model
// load.
func HeapInUse() uint64 {
	runtime.GC()
	runtime.GC() // second cycle collects objects freed by finalizers of the first
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// Throughput measures completed operations over a wall-clock window.
type Throughput struct {
	mu    sync.Mutex
	count int64
	start time.Time
}

// NewThroughput starts a throughput window now.
func NewThroughput() *Throughput { return &Throughput{start: time.Now()} }

// Add records n completed operations.
func (t *Throughput) Add(n int64) {
	t.mu.Lock()
	t.count += n
	t.mu.Unlock()
}

// PerSecond returns operations per second since the window started.
func (t *Throughput) PerSecond() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	el := time.Since(t.start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(t.count) / el
}

// Count returns the completed operation count.
func (t *Throughput) Count() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}
