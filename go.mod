module pretzel

go 1.24
