module pretzel

go 1.23
